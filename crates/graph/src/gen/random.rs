//! Random graph models: Erdős–Rényi `G(n, p)` and random `d`-regular
//! graphs via the pairing (configuration) model.
//!
//! Random `d`-regular graphs (`d ≥ 3`) have constant conductance with high
//! probability (Bollobás \[7\], cited in Lemma 16), which makes them the
//! expander family of the paper's headline result and the super-node graph
//! `G_S` of the lower-bound construction (Figure 1).

use rand::seq::SliceRandom;
use rand::{Rng, RngExt};

use crate::analysis;
use crate::builder::{from_structured_edges, narrow};
use crate::error::GraphError;
use crate::graph::Graph;

/// Maximum attempts for rejection-sampling generators.
const MAX_ATTEMPTS: usize = 1000;

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`. Not necessarily connected — see [`gnp_connected`].
///
/// Uses geometric skipping, so the cost is `O(n + m)` rather than `O(n²)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `n < 2` or `p ∉ [0, 1]`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameters {
            reason: format!("gnp needs n >= 2, got {n}"),
        });
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameters {
            reason: format!("gnp needs p in [0, 1], got {p}"),
        });
    }
    // Both sampling paths below enumerate strictly increasing pair
    // indices, so the edge stream is duplicate- and loop-free by
    // construction and can be frozen into CSR directly.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((narrow(u), narrow(v)));
            }
        }
        return from_structured_edges(n, edges);
    }
    if p > 0.0 {
        // Iterate over the strictly-upper-triangular pair index with
        // geometric jumps: the gap between successive edges is
        // Geometric(p).
        let total_pairs = n * (n - 1) / 2;
        let log1p = (1.0 - p).ln();
        let mut idx: usize = 0;
        loop {
            let roll: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            let skip = (roll.ln() / log1p).floor() as usize;
            idx = match idx.checked_add(skip) {
                Some(i) => i,
                None => break,
            };
            if idx >= total_pairs {
                break;
            }
            let (a, bnode) = pair_from_index(n, idx);
            edges.push((narrow(a), narrow(bnode)));
            idx += 1;
        }
    }
    let mut g = from_structured_edges(n, edges)?;
    g.shuffle_ports(rng);
    Ok(g)
}

/// `G(n, p)` conditioned on connectivity: resamples until connected.
///
/// # Errors
///
/// Returns [`GraphError::RetriesExhausted`] if 1000 samples all come out
/// disconnected (pick `p ≳ ln n / n` to avoid this), plus the parameter
/// errors of [`gnp`].
pub fn gnp_connected<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    for _ in 0..MAX_ATTEMPTS {
        let g = gnp(n, p, rng)?;
        if analysis::is_connected(&g) {
            return Ok(g);
        }
    }
    Err(GraphError::RetriesExhausted {
        what: format!("connected G({n}, {p})"),
        attempts: MAX_ATTEMPTS,
    })
}

/// Random `d`-regular simple connected graph via the pairing model with
/// edge-swap repair: `n·d` stubs are shuffled and paired, then each loop
/// or parallel edge is repaired by a degree-preserving swap with a
/// uniformly random good edge (the standard configuration-model repair;
/// full-sample rejection has acceptance `≈ e^{-(d²-1)/4}`, which is
/// hopeless already at `d = 6`, while repair is `O(n·d)` expected at any
/// `n` — this is what makes `n = 10⁵` expanders practical). Disconnected
/// results (rare for `d ≥ 3`) are resampled.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `d == 0`, `d >= n`, or
/// `n·d` is odd; [`GraphError::RetriesExhausted`] if sampling fails 1000
/// times (practically impossible for constant `d ≥ 3`).
///
/// ```
/// use rand::{SeedableRng, rngs::StdRng};
/// let mut rng = StdRng::seed_from_u64(5);
/// let g = welle_graph::gen::random_regular(32, 4, &mut rng).unwrap();
/// assert!(g.is_regular(4));
/// ```
pub fn random_regular<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if d == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "degree d must be positive".into(),
        });
    }
    if d >= n {
        return Err(GraphError::InvalidParameters {
            reason: format!("d-regular graph needs d < n, got d={d}, n={n}"),
        });
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidParameters {
            reason: format!("n*d must be even, got n={n}, d={d}"),
        });
    }
    let mut stubs: Vec<u32> = Vec::with_capacity(n * d);
    for _ in 0..MAX_ATTEMPTS {
        stubs.clear();
        for u in 0..n {
            let stub = narrow(u);
            for _ in 0..d {
                stubs.push(stub);
            }
        }
        stubs.shuffle(rng);
        if let Some(edges) = pair_with_repair(&stubs, rng) {
            // The repair loop's own seen-set guarantees a loop- and
            // duplicate-free edge list, so it freezes into CSR directly
            // — no second validation pass over n·d/2 edges.
            let mut g = from_structured_edges(n, edges)?;
            if analysis::is_connected(&g) {
                g.shuffle_ports(rng);
                return Ok(g);
            }
        }
    }
    Err(GraphError::RetriesExhausted {
        what: format!("random {d}-regular graph on {n} nodes"),
        attempts: MAX_ATTEMPTS,
    })
}

/// Canonical set key of an undirected edge.
fn edge_key(u: u32, v: u32) -> u64 {
    let (a, b) = if u <= v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

/// Pairs consecutive stubs; loops and duplicate edges are repaired by
/// swapping with a uniformly random accepted edge. Returns `None` if
/// repair stalls (then the caller reshuffles from scratch).
fn pair_with_repair<R: Rng + ?Sized>(stubs: &[u32], rng: &mut R) -> Option<Vec<(u32, u32)>> {
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(stubs.len() / 2);
    let mut seen: std::collections::HashSet<u64> =
        std::collections::HashSet::with_capacity(stubs.len());
    let mut bad: Vec<(u32, u32)> = Vec::new();
    for pair in stubs.chunks_exact(2) {
        let (u, v) = (pair[0], pair[1]);
        if u == v || !seen.insert(edge_key(u, v)) {
            bad.push((u, v));
        } else {
            edges.push((u, v));
        }
    }
    // Each bad pair needs O(1) swap attempts in expectation (a random
    // good edge collides with the pair's endpoints with probability
    // O(d/n)); the generous budget covers the tail.
    let mut budget = 200 + 40 * bad.len();
    while let Some((u, v)) = bad.pop() {
        loop {
            budget = budget.checked_sub(1)?;
            if edges.is_empty() {
                return None;
            }
            let idx = rng.random_range(0..edges.len());
            let (mut x, mut y) = edges[idx];
            if rng.random_bool(0.5) {
                std::mem::swap(&mut x, &mut y);
            }
            // Swap (u,v) + (x,y) → (u,x) + (v,y).
            if u == x || v == y {
                continue;
            }
            let k1 = edge_key(u, x);
            let k2 = edge_key(v, y);
            if k1 == k2 || seen.contains(&k1) || seen.contains(&k2) {
                continue;
            }
            seen.remove(&edge_key(x, y));
            seen.insert(k1);
            seen.insert(k2);
            edges[idx] = (u, x);
            edges.push((v, y));
            break;
        }
    }
    Some(edges)
}

/// Maps a linear index `0..n(n-1)/2` to the pair `(u, v)` with `u < v`
/// in lexicographic order.
fn pair_from_index(n: usize, idx: usize) -> (usize, usize) {
    // Row u starts at offset u*n - u*(u+1)/2 - u ... simpler: walk rows.
    // Rows have sizes (n-1), (n-2), ..., 1; find the row by subtraction.
    let mut u = 0usize;
    let mut rem = idx;
    let mut row = n - 1;
    while rem >= row {
        rem -= row;
        u += 1;
        row -= 1;
    }
    (u, u + 1 + rem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pair_index_enumerates_all_pairs() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..n * (n - 1) / 2 {
            let (u, v) = pair_from_index(n, idx);
            assert!(u < v && v < n);
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len(), 21);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(0);
        let empty = gnp(10, 0.0, &mut rng).unwrap();
        assert_eq!(empty.m(), 0);
        let full = gnp(10, 1.0, &mut rng).unwrap();
        assert_eq!(full.m(), 45);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200;
        let p = 0.1;
        let mut total = 0usize;
        let reps = 20;
        for _ in 0..reps {
            total += gnp(n, p, &mut rng).unwrap().m();
        }
        let mean = total as f64 / reps as f64;
        let expected = p * (n * (n - 1) / 2) as f64;
        assert!(
            (mean - expected).abs() < 0.05 * expected,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn gnp_connected_succeeds_above_threshold() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100;
        let p = 2.0 * (n as f64).ln() / n as f64;
        let g = gnp_connected(n, p, &mut rng).unwrap();
        assert!(analysis::is_connected(&g));
    }

    #[test]
    fn regular_is_regular_and_connected() {
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = random_regular(50, 4, &mut rng).unwrap();
            assert_eq!(g.n(), 50);
            assert!(g.is_regular(4));
            assert!(analysis::is_connected(&g));
        }
    }

    #[test]
    fn regular_with_odd_total_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(random_regular(5, 3, &mut rng).is_err());
    }

    #[test]
    fn regular_small_cases() {
        let mut rng = StdRng::seed_from_u64(9);
        // 4-regular on 5 nodes is K5.
        let g = random_regular(5, 4, &mut rng).unwrap();
        assert_eq!(g.m(), 10);
        // 3-regular on 4 nodes is K4.
        let g = random_regular(4, 3, &mut rng).unwrap();
        assert_eq!(g.m(), 6);
    }

    #[test]
    fn regular_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(random_regular(4, 0, &mut rng).is_err());
        assert!(random_regular(4, 4, &mut rng).is_err());
        assert!(gnp(1, 0.5, &mut rng).is_err());
        assert!(gnp(5, 1.5, &mut rng).is_err());
    }

    #[test]
    fn regular_expander_has_log_diameter() {
        let mut rng = StdRng::seed_from_u64(77);
        let g = random_regular(256, 4, &mut rng).unwrap();
        let d = analysis::diameter_exact(&g).unwrap();
        // 4-regular expander on 256 nodes: diameter well below 20.
        assert!(d <= 20, "diameter {d} too large for an expander");
    }
}
