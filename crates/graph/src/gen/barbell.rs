//! Barbell and lollipop graphs — extreme low-conductance families
//! (`φ = Θ(1/n²)`, `t_mix = Θ(n³)` for the lollipop) used to stress the
//! poorly-connected end of the spectrum.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;

/// Barbell graph: two cliques `K_k` joined by a single edge.
/// `n = 2k`, conductance `Θ(1/k²)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] for `k < 2`.
///
/// ```
/// let g = welle_graph::gen::barbell(5).unwrap();
/// assert_eq!(g.n(), 10);
/// assert_eq!(g.m(), 2 * 10 + 1);
/// ```
pub fn barbell(k: usize) -> Result<Graph, GraphError> {
    if k < 2 {
        return Err(GraphError::InvalidParameters {
            reason: format!("barbell needs clique size k >= 2, got {k}"),
        });
    }
    let n = 2 * k;
    let mut b = GraphBuilder::with_capacity(n, k * (k - 1) + 1);
    for base in [0, k] {
        for u in 0..k {
            for v in (u + 1)..k {
                b.add_edge(base + u, base + v)?;
            }
        }
    }
    // Join the last node of the left clique to the first of the right.
    b.add_edge(k - 1, k)?;
    b.build()
}

/// Lollipop graph: clique `K_k` with a path of `tail` extra nodes attached.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] for `k < 2` or `tail == 0`.
pub fn lollipop(k: usize, tail: usize) -> Result<Graph, GraphError> {
    if k < 2 || tail == 0 {
        return Err(GraphError::InvalidParameters {
            reason: format!("lollipop needs k >= 2 and tail >= 1, got k={k}, tail={tail}"),
        });
    }
    let n = k + tail;
    let mut b = GraphBuilder::with_capacity(n, k * (k - 1) / 2 + tail);
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(u, v)?;
        }
    }
    for t in 0..tail {
        b.add_edge(k - 1 + t, k + t)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn barbell_shape() {
        let g = barbell(4).unwrap();
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 2 * 6 + 1);
        assert!(analysis::is_connected(&g));
        // Crossing the bridge: 1 (to bridge) + 1 (bridge) + 1 = 3.
        assert_eq!(analysis::diameter_exact(&g), Some(3));
    }

    #[test]
    fn barbell_bridge_is_a_cut() {
        let g = barbell(6);
        let g = g.unwrap();
        // The single joining edge determines a cut of conductance
        // 1 / vol(K_6 side). Left side volume: 5*6/2*2 + 1 = 31.
        let left: Vec<bool> = (0..12).map(|u| u < 6).collect();
        let phi = analysis::cut_conductance(&g, &left).unwrap();
        assert!((phi - 1.0 / 31.0).abs() < 1e-12, "phi = {phi}");
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(5, 3).unwrap();
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 10 + 3);
        assert!(analysis::is_connected(&g));
        assert_eq!(analysis::diameter_exact(&g), Some(4));
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(barbell(1).is_err());
        assert!(lollipop(1, 3).is_err());
        assert!(lollipop(4, 0).is_err());
    }
}
