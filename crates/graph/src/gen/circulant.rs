//! Circulant graphs `C_n(S)`: node `u` connects to `u ± s (mod n)` for
//! each jump `s ∈ S`. A tunable-connectivity family interpolating between
//! the ring (`S = {1}`, conductance `Θ(1/n)`) and dense graphs with large
//! jumps mixing in few steps — useful for sweeping conductance
//! continuously in the experiments.

use crate::builder::{from_structured_edges, narrow};
use crate::error::GraphError;
use crate::graph::Graph;

/// Circulant graph with the given jump set.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `n < 3`, `jumps` is empty,
/// contains 0, a duplicate, a value `≥ (n+1)/2` (which would create
/// parallel edges), or exactly `n/2` for even `n` (self-paired jump —
/// supported by the model but kept out for degree uniformity).
///
/// ```
/// // C_12({1, 3}): 4-regular, better connected than the plain ring.
/// let g = welle_graph::gen::circulant(12, &[1, 3]).unwrap();
/// assert!(g.is_regular(4));
/// ```
pub fn circulant(n: usize, jumps: &[usize]) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidParameters {
            reason: format!("circulant needs n >= 3, got {n}"),
        });
    }
    if jumps.is_empty() {
        return Err(GraphError::InvalidParameters {
            reason: "circulant needs at least one jump".into(),
        });
    }
    let mut seen = std::collections::HashSet::new();
    for &s in jumps {
        if s == 0 || 2 * s >= n {
            return Err(GraphError::InvalidParameters {
                reason: format!("jump {s} out of range (need 1 <= s < n/2 for n = {n})"),
            });
        }
        if !seen.insert(s) {
            return Err(GraphError::InvalidParameters {
                reason: format!("duplicate jump {s}"),
            });
        }
    }
    let mut edges = Vec::with_capacity(n * jumps.len());
    for u in 0..n {
        for &s in jumps {
            edges.push((narrow(u), narrow((u + s) % n)));
        }
    }
    from_structured_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn single_jump_is_a_ring() {
        let g = circulant(9, &[1]).unwrap();
        let ring = crate::gen::ring(9).unwrap();
        assert_eq!(g.m(), ring.m());
        assert!(g.is_regular(2));
    }

    #[test]
    fn jumps_add_regular_degree() {
        let g = circulant(16, &[1, 2, 5]).unwrap();
        assert!(g.is_regular(6));
        assert_eq!(g.m(), 48);
        assert!(analysis::is_connected(&g));
    }

    #[test]
    fn long_jumps_shrink_diameter() {
        let ring = circulant(64, &[1]).unwrap();
        let chord = circulant(64, &[1, 8]).unwrap();
        let d_ring = analysis::diameter_exact(&ring).unwrap();
        let d_chord = analysis::diameter_exact(&chord).unwrap();
        assert!(d_chord < d_ring / 2, "{d_chord} vs {d_ring}");
    }

    #[test]
    fn chords_raise_conductance() {
        let ring = circulant(16, &[1]).unwrap();
        let chord = circulant(16, &[1, 4]).unwrap();
        let phi_ring = analysis::conductance_exact(&ring).unwrap();
        let phi_chord = analysis::conductance_exact(&chord).unwrap();
        assert!(phi_chord > phi_ring, "{phi_chord} vs {phi_ring}");
    }

    #[test]
    fn rejects_bad_jump_sets() {
        assert!(circulant(2, &[1]).is_err());
        assert!(circulant(8, &[]).is_err());
        assert!(circulant(8, &[0]).is_err());
        assert!(circulant(8, &[4]).is_err()); // 2s == n: self-paired
        assert!(circulant(8, &[1, 1]).is_err());
        assert!(circulant(9, &[5]).is_err()); // 2s > n
    }

    #[test]
    fn disconnected_when_jumps_share_factor_with_n() {
        // gcd(2, 8) = 2: two components.
        let g = circulant(8, &[2]).unwrap();
        assert!(!analysis::is_connected(&g));
        assert_eq!(analysis::component_count(&g), 2);
    }
}
