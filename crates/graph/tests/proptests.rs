//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use welle_graph::{analysis, gen, from_edges, GraphBuilder, NodeId};

/// Strategy: a random simple undirected graph given by (n, edge mask seed).
fn arb_edge_list(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (4..=max_n).prop_flat_map(|n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let len = pairs.len();
        (Just(n), proptest::collection::vec(any::<bool>(), len)).prop_map(
            move |(n, mask)| {
                let chosen: Vec<(usize, usize)> = pairs
                    .iter()
                    .zip(&mask)
                    .filter(|(_, &keep)| keep)
                    .map(|(&e, _)| e)
                    .collect();
                (n, chosen)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_round_trips_edge_set((n, edges) in arb_edge_list(12)) {
        let g = from_edges(n, &edges).unwrap();
        prop_assert_eq!(g.m(), edges.len());
        let mut expect: Vec<(usize, usize)> = edges.clone();
        expect.sort_unstable();
        let mut got: Vec<(usize, usize)> = g
            .edges()
            .map(|(_, u, v)| (u.index(), v.index()))
            .collect();
        got.sort_unstable();
        prop_assert_eq!(expect, got);
    }

    #[test]
    fn reverse_port_is_involution((n, edges) in arb_edge_list(12)) {
        let g = from_edges(n, &edges).unwrap();
        for u in g.nodes() {
            for p in g.ports(u) {
                let v = g.neighbor(u, p);
                let q = g.reverse_port(u, p);
                prop_assert_eq!(g.neighbor(v, q), u);
                prop_assert_eq!(g.reverse_port(v, q), p);
            }
        }
    }

    #[test]
    fn shuffle_preserves_adjacency_sets((n, edges) in arb_edge_list(10), seed in any::<u64>()) {
        let mut g = from_edges(n, &edges).unwrap();
        let mut before: Vec<Vec<usize>> = g
            .nodes()
            .map(|u| {
                let mut v: Vec<usize> = g.neighbors(u).iter().map(|x| x.index()).collect();
                v.sort_unstable();
                v
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        g.shuffle_ports(&mut rng);
        let mut after: Vec<Vec<usize>> = g
            .nodes()
            .map(|u| {
                let mut v: Vec<usize> = g.neighbors(u).iter().map(|x| x.index()).collect();
                v.sort_unstable();
                v
            })
            .collect();
        before.sort();
        after.sort();
        prop_assert_eq!(before, after);
        // Reverse ports stay consistent after shuffling.
        for u in g.nodes() {
            for p in g.ports(u) {
                let v = g.neighbor(u, p);
                let q = g.reverse_port(u, p);
                prop_assert_eq!(g.neighbor(v, q), u);
            }
        }
    }

    #[test]
    fn volumes_partition_total((n, edges) in arb_edge_list(12), mask_seed in any::<u64>()) {
        let g = from_edges(n, &edges).unwrap();
        let side: Vec<bool> = (0..n).map(|u| (mask_seed >> (u % 64)) & 1 == 1).collect();
        let v1 = analysis::volume(&g, &side);
        let flipped: Vec<bool> = side.iter().map(|b| !b).collect();
        let v2 = analysis::volume(&g, &flipped);
        prop_assert_eq!(v1 + v2, g.volume());
    }

    #[test]
    fn exact_conductance_lower_bounds_any_cut(seed in any::<u64>(), n in 4usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Random connected graph: random tree plus extra random edges.
        let g = {
            let mut b = GraphBuilder::new(n);
            for child in 1..n {
                let parent = rand::RngExt::random_range(&mut rng, 0..child);
                b.add_edge(parent, child).unwrap();
            }
            for _ in 0..n {
                let u = rand::RngExt::random_range(&mut rng, 0..n);
                let v = rand::RngExt::random_range(&mut rng, 0..n);
                if u != v && !b.has_edge(u, v) {
                    b.add_edge(u, v).unwrap();
                }
            }
            b.build().unwrap()
        };
        let exact = analysis::conductance_exact(&g).unwrap();
        // Compare against 10 random cuts.
        for _ in 0..10 {
            let side: Vec<bool> = (0..n).map(|_| rand::RngExt::random_bool(&mut rng, 0.5)).collect();
            if let Some(phi) = analysis::cut_conductance(&g, &side) {
                prop_assert!(exact <= phi + 1e-12);
            }
        }
    }

    #[test]
    fn cheeger_sandwich_on_random_connected_graphs(seed in any::<u64>(), n in 5usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = {
            let mut b = GraphBuilder::new(n);
            for child in 1..n {
                let parent = rand::RngExt::random_range(&mut rng, 0..child);
                b.add_edge(parent, child).unwrap();
            }
            for _ in 0..2 * n {
                let u = rand::RngExt::random_range(&mut rng, 0..n);
                let v = rand::RngExt::random_range(&mut rng, 0..n);
                if u != v && !b.has_edge(u, v) {
                    b.add_edge(u, v).unwrap();
                }
            }
            b.build().unwrap()
        };
        let phi = analysis::conductance_exact(&g).unwrap();
        let gap = analysis::lazy_spectral_gap(&g, analysis::SpectralOptions::default()).unwrap();
        let (lo, hi) = analysis::cheeger_bounds(gap);
        prop_assert!(lo <= phi + 1e-7, "lo {} phi {}", lo, phi);
        prop_assert!(phi <= hi + 1e-7, "phi {} hi {}", phi, hi);
    }

    #[test]
    fn bridges_disconnect_iff_removed(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_tree(12, &mut rng).unwrap();
        // Every edge of a tree is a bridge.
        prop_assert_eq!(analysis::bridges(&g).len(), g.m());
    }

    #[test]
    fn random_regular_structure(seed in any::<u64>(), half in 4usize..20) {
        let n = 2 * half;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_regular(n, 3, &mut rng).unwrap();
        prop_assert!(g.is_regular(3));
        prop_assert!(analysis::is_connected(&g));
        prop_assert_eq!(g.m(), 3 * n / 2);
    }

    #[test]
    fn dumbbell_structure(seed in any::<u64>(), n in 6usize..16) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = gen::ring(n).unwrap();
        let db = gen::dumbbell(&base, &mut rng).unwrap();
        prop_assert!(analysis::is_connected(db.graph()));
        prop_assert!(db.graph().is_regular(2));
        let crossings = db
            .graph()
            .edges()
            .filter(|&(_, u, v)| db.is_left(u) != db.is_left(v))
            .count();
        prop_assert_eq!(crossings, 2);
    }

    #[test]
    fn barbell_structure(k in 2usize..12) {
        let g = gen::barbell(k).unwrap();
        prop_assert_eq!(g.n(), 2 * k);
        prop_assert_eq!(g.m(), k * (k - 1) + 1);
        prop_assert!(analysis::is_connected(&g));
        // The joining edge is the unique bridge (for k >= 3 the cliques
        // themselves are 2-edge-connected; K_2 cliques are single edges,
        // making every edge a bridge).
        let bridges = analysis::bridges(&g);
        if k >= 3 {
            prop_assert_eq!(bridges.len(), 1);
        } else {
            prop_assert_eq!(bridges.len(), 3);
        }
        // Conductance of the clique/clique cut: 1 crossing edge over the
        // volume of one side, vol = 2 * (k choose 2) + 1.
        let left: Vec<bool> = (0..2 * k).map(|u| u < k).collect();
        let phi = analysis::cut_conductance(&g, &left).unwrap();
        let expect = 1.0 / (k * (k - 1) + 1) as f64;
        prop_assert!((phi - expect).abs() < 1e-12, "phi {} expect {}", phi, expect);
    }

    #[test]
    fn lollipop_structure(k in 2usize..10, tail in 1usize..8) {
        let g = gen::lollipop(k, tail).unwrap();
        prop_assert_eq!(g.n(), k + tail);
        prop_assert_eq!(g.m(), k * (k - 1) / 2 + tail);
        prop_assert!(analysis::is_connected(&g));
        // Every tail edge is a bridge; for k >= 3 the clique contributes
        // none.
        if k >= 3 {
            prop_assert_eq!(analysis::bridges(&g).len(), tail);
        }
    }

    #[test]
    fn clique_of_cliques_structure(seed in any::<u64>(), target_n in 60usize..240) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = gen::CliqueOfCliquesParams::new(target_n, 0.3);
        let lb = gen::CliqueOfCliques::build(params, &mut rng).unwrap();
        let s = lb.clique_size();
        let nc = lb.num_cliques();
        prop_assert!(s >= 4, "cliques must hold the 4-regular super-degree");
        prop_assert!(nc >= 5);
        let g = lb.graph();
        // Figure 2 degree uniformity: every node has s-1 neighbours
        // (two intra-clique edges removed per attached inter-clique edge).
        prop_assert!(g.is_regular(s - 1), "expected ({} - 1)-regular", s);
        prop_assert_eq!(g.n(), s * nc);
        prop_assert!(analysis::is_connected(g));
        // The super-graph is 4-regular on nc nodes, so exactly 2·nc
        // inter-clique edges survive in the expansion.
        prop_assert_eq!(lb.super_graph().n(), nc);
        prop_assert!(lb.super_graph().is_regular(gen::SUPER_DEGREE));
        prop_assert_eq!(lb.inter_edge_count(), 2 * nc);
        // clique_of partitions the nodes into nc groups of exactly s.
        let mut sizes = vec![0usize; nc];
        for u in g.nodes() {
            sizes[lb.clique_of(u)] += 1;
        }
        prop_assert!(sizes.iter().all(|&c| c == s), "sizes {:?}", sizes);
    }

    #[test]
    fn directed_index_is_a_bijection((n, edges) in arb_edge_list(10)) {
        let g = from_edges(n, &edges).unwrap();
        let mut seen = vec![false; g.directed_edge_count()];
        for u in g.nodes() {
            for p in g.ports(u) {
                let idx = g.directed_index(u, p);
                prop_assert!(!seen[idx]);
                seen[idx] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn bfs_distances_respect_triangle_inequality((n, edges) in arb_edge_list(10)) {
        let g = from_edges(n, &edges).unwrap();
        let d = analysis::bfs(&g, NodeId::new(0));
        for (_, u, v) in g.edges() {
            let (du, dv) = (d[u.index()], d[v.index()]);
            if du != analysis::UNREACHABLE && dv != analysis::UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1);
            }
        }
    }
}
