//! End-to-end election benchmarks: the headline algorithm on the
//! families of §1, plus the flood-max baseline for scale.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use welle_bench::workloads::Family;
use welle_core::baselines::run_flood_max;
use welle_core::Election;

fn bench_election(c: &mut Criterion) {
    let mut group = c.benchmark_group("election");
    group.sample_size(10);
    for fam in [Family::Expander, Family::Clique] {
        let graph = fam.build(128, 7);
        let cfg = fam.election_config(graph.n());
        group.bench_with_input(BenchmarkId::new(fam.name(), graph.n()), &graph, |b, g| {
            b.iter(|| black_box(Election::on(g).config(cfg).seed(3).run().unwrap()))
        });
    }
    group.finish();
}

fn bench_floodmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("flood_max_baseline");
    group.sample_size(10);
    let graph = Family::Expander.build(256, 7);
    group.bench_function("expander_256", |b| {
        b.iter(|| black_box(run_flood_max(&graph, 3)))
    });
    group.finish();
}

criterion_group!(benches, bench_election, bench_floodmax);
criterion_main!(benches);
