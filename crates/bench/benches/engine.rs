//! Engine micro-benchmarks: round throughput of the CONGEST simulator
//! under a dense flood workload — serial vs threaded, plus the async
//! executor at zero latency (the cost of the tick bookkeeping alone)
//! and under a sampled model (the cost of the event heap), and the
//! serial engine with the telemetry layer on (full sample retention,
//! and full retention plus the span profiler) to price the
//! once-per-round observability branch against the telemetry-off rows.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use welle_congest::testing::FloodMax;
use welle_congest::{
    AsyncEngine, Engine, EngineConfig, LatencyModel, TelemetryConfig, ThreadedEngine,
};
use welle_graph::gen;

fn bench_flood(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_flood");
    group.sample_size(10);
    for n in [256usize, 1024] {
        let mut rng = StdRng::seed_from_u64(1);
        let g = Arc::new(gen::random_regular(n, 4, &mut rng).unwrap());
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| {
                let nodes = (0..n).map(|i| FloodMax::new(i as u64)).collect();
                let mut e = Engine::new(Arc::clone(&g), nodes, EngineConfig::default());
                black_box(e.run(100_000));
                black_box(e.metrics().messages)
            })
        });
        group.bench_with_input(BenchmarkId::new("threaded4", n), &n, |b, _| {
            b.iter(|| {
                let nodes = (0..n).map(|i| FloodMax::new(i as u64)).collect();
                let mut e =
                    ThreadedEngine::new(Arc::clone(&g), nodes, EngineConfig::default(), 4);
                black_box(e.run(100_000));
                black_box(e.metrics().messages)
            })
        });
        group.bench_with_input(BenchmarkId::new("serial_telem_full", n), &n, |b, _| {
            b.iter(|| {
                let nodes = (0..n).map(|i| FloodMax::new(i as u64)).collect();
                let mut e = Engine::new(Arc::clone(&g), nodes, EngineConfig::default());
                e.set_telemetry(TelemetryConfig::full());
                black_box(e.run(100_000));
                let report = e.take_telemetry();
                black_box((e.metrics().messages, report.map(|r| r.total_samples)))
            })
        });
        group.bench_with_input(BenchmarkId::new("serial_telem_profile", n), &n, |b, _| {
            b.iter(|| {
                let nodes = (0..n).map(|i| FloodMax::new(i as u64)).collect();
                let mut e = Engine::new(Arc::clone(&g), nodes, EngineConfig::default());
                e.set_telemetry(TelemetryConfig::full().with_profile());
                black_box(e.run(100_000));
                let report = e.take_telemetry();
                black_box((e.metrics().messages, report.map(|r| r.total_samples)))
            })
        });
        group.bench_with_input(BenchmarkId::new("async_zero", n), &n, |b, _| {
            b.iter(|| {
                let mut e = AsyncEngine::from_fn(
                    Arc::clone(&g),
                    EngineConfig::default(),
                    LatencyModel::zero(),
                    |i| FloodMax::new(i as u64),
                );
                black_box(e.run(100_000));
                black_box(e.metrics().messages)
            })
        });
        group.bench_with_input(BenchmarkId::new("async_lognormal", n), &n, |b, _| {
            b.iter(|| {
                let mut e = AsyncEngine::from_fn(
                    Arc::clone(&g),
                    EngineConfig::default(),
                    LatencyModel::log_normal(0.3, 0.6).seed(7),
                    |i| FloodMax::new(i as u64),
                );
                black_box(e.run(100_000));
                black_box(e.metrics().messages)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flood);
criterion_main!(benches);
