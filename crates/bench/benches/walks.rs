//! Random-walk machinery benchmarks: mixing-time computation and token
//! splitting throughput.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use welle_graph::gen;
use welle_walks::{mixing_time, split_lazy, MixingOptions, StartPolicy};

fn bench_mixing(c: &mut Criterion) {
    let mut group = c.benchmark_group("mixing_time");
    group.sample_size(10);
    for n in [128usize, 512] {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::random_regular(n, 4, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("sampled_starts", n), &n, |b, _| {
            b.iter(|| {
                black_box(mixing_time(
                    &g,
                    MixingOptions {
                        horizon: 10_000,
                        starts: StartPolicy::Sample(4),
                    },
                ))
            })
        });
    }
    group.finish();
}

fn bench_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("split_lazy");
    for (count, degree) in [(500u32, 4usize), (500, 512), (5_000, 4)] {
        let mut rng = StdRng::seed_from_u64(3);
        group.bench_with_input(
            BenchmarkId::new("split", format!("c{count}_d{degree}")),
            &count,
            |b, _| b.iter(|| black_box(split_lazy(count, degree, &mut rng))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mixing, bench_split);
criterion_main!(benches);
