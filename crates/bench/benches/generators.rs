//! Graph generator benchmarks: the randomized constructions that gate
//! experiment setup time.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use welle_graph::gen::{self, CliqueOfCliques, CliqueOfCliquesParams};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    for n in [1024usize, 4096] {
        group.bench_with_input(BenchmarkId::new("random_regular_d4", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(gen::random_regular(n, 4, &mut rng).unwrap())
            })
        });
    }
    group.bench_function("clique_of_cliques_n1000_eps0.3", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            black_box(
                CliqueOfCliques::build(CliqueOfCliquesParams::new(1000, 0.3), &mut rng).unwrap(),
            )
        })
    });
    group.bench_function("hypercube_d12", |b| {
        b.iter(|| black_box(gen::hypercube(12).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
