//! **E5 — Figures 1–2 & Lemma 16 (the lower-bound construction).**
//! Builds `G(n, ε)` across ε and verifies the claimed structure: uniform
//! degrees, 4 inter-clique edges per clique, connectivity, and
//! conductance `φ = Θ(α) = Θ(n^{-2ε})` (measured by the spectral sweep
//! and by the best clique-respecting cut).

use crate::table::Table;
use rand::{rngs::StdRng, SeedableRng};
use welle_graph::analysis;
use welle_graph::gen::{CliqueOfCliques, CliqueOfCliquesParams};

/// Runs the ε sweep.
pub fn run(quick: bool) -> Vec<Table> {
    let target_n = if quick { 600 } else { 2000 };
    let epsilons: &[f64] = if quick {
        &[0.25, 0.35]
    } else {
        &[0.20, 0.25, 0.30, 0.35, 0.40]
    };

    let mut table = Table::new(
        "E5 / Lemma 16: lower-bound graph G(n, eps), phi = Theta(alpha)",
        &[
            "eps", "n", "cliques", "s", "degree_ok", "inter_edges", "alpha",
            "phi_sweep", "phi_cliquecut", "phi/alpha",
        ],
    );
    let mut rng = StdRng::seed_from_u64(42);
    for &eps in epsilons {
        let lb = CliqueOfCliques::build(CliqueOfCliquesParams::new(target_n, eps), &mut rng)
            .expect("construction succeeds");
        let g = lb.graph();
        let s = lb.clique_size();
        let degree_ok = g.is_regular(s - 1);
        assert!(analysis::is_connected(g), "construction must be connected");
        let alpha = lb.alpha();
        let phi_sweep = analysis::conductance_sweep(g, 3000);
        // Best balanced clique-respecting cut (Claim 17's optimal shape).
        let ncl = lb.num_cliques();
        let cut: Vec<bool> = (0..ncl).map(|c| c < ncl / 2).collect();
        let phi_cut = lb
            .clique_respecting_cut_conductance(&cut)
            .expect("nontrivial cut");
        table.push_strings(vec![
            format!("{eps:.2}"),
            g.n().to_string(),
            ncl.to_string(),
            s.to_string(),
            degree_ok.to_string(),
            lb.inter_edge_count().to_string(),
            format!("{alpha:.2e}"),
            format!("{phi_sweep:.2e}"),
            format!("{phi_cut:.2e}"),
            format!("{:.2}", phi_sweep / alpha),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_sweep_valid() {
        let tables = super::run(true);
        for row in tables[0].to_csv().lines().skip(1) {
            let cols: Vec<&str> = row.split(',').collect();
            assert_eq!(cols[4], "true", "degrees must be uniform: {row}");
            let ratio: f64 = cols[9].parse().unwrap();
            assert!(
                ratio > 0.02 && ratio < 100.0,
                "phi/alpha ratio {ratio} outside Theta(1) band"
            );
        }
    }
}
