//! **E2 — Lemma 1 (contender concentration).** The number of contenders
//! lies in `[¾·c1·ln n, 5/4·c1·ln n]` w.h.p.
//!
//! We run the actual Algorithm 1 sampling inside the protocol (single
//! 1-step phase so runs are cheap) and report the empirical band.

use crate::table::Table;
use crate::workloads::Family;
use welle_core::{Campaign, Election, ElectionConfig};

/// Runs the sweep.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick {
        &[256, 512]
    } else {
        &[256, 512, 1024, 2048]
    };
    let reps = if quick { 10 } else { 30 };

    let mut table = Table::new(
        "E2 / Lemma 1: contender count vs [3/4, 5/4] c1 ln n band",
        &[
            "n", "E[X]=c1 ln n", "band_lo", "band_hi", "mean", "min", "max", "in_band",
        ],
    );
    for &n in sizes {
        let graph = Family::Expander.build(n, 5);
        let mut cfg = ElectionConfig::tuned_for_simulation(n);
        cfg.fixed_walk_len = Some(1); // sampling only needs one cheap phase
        let expect = cfg.c1 * (n as f64).ln();
        let lo = 0.75 * expect;
        let hi = 1.25 * expect;
        let campaign = Campaign::new(Election::on(&graph).config(cfg))
            .seeds(10_000..10_000 + reps)
            .run()
            .expect("experiment configs are valid");
        let counts: Vec<u64> = campaign
            .trials
            .iter()
            .map(|t| t.report.contenders as u64)
            .collect();
        let in_band = counts
            .iter()
            .filter(|&&c| (c as f64) >= lo && (c as f64) <= hi)
            .count();
        let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        table.push_strings(vec![
            n.to_string(),
            format!("{expect:.1}"),
            format!("{lo:.1}"),
            format!("{hi:.1}"),
            format!("{mean:.1}"),
            counts.iter().min().unwrap().to_string(),
            counts.iter().max().unwrap().to_string(),
            format!("{in_band}/{reps}"),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_rows() {
        let tables = super::run(true);
        assert!(!tables[0].is_empty());
    }
}
