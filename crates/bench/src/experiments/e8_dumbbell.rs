//! **E8 — Theorem 28 (knowledge of n is critical).** On dumbbells with a
//! dense base and a frugal (single-phase, large-message) configuration,
//! the wrong-n election spends `o(m)` messages, never crosses a bridge
//! with constant probability, and split-brains; the first crossing, when
//! it happens, costs `Θ(m)` messages (Lemma 30). Sparse bases show the
//! complementary effect: the walk traffic alone exceeds `m`, so crossings
//! are immediate and the sides merge.

use crate::table::Table;
use rand::{rngs::StdRng, SeedableRng};
use welle_graph::gen;
use welle_lowerbound::bridge::{frugal_clique_config, run_dumbbell_election};
use welle_core::ElectionConfig;

/// Runs the base-density sweep.
pub fn run(quick: bool) -> Vec<Table> {
    let mut table = Table::new(
        "E8 / Theorem 28: dumbbell elections with wrong n (= half)",
        &[
            "base", "m", "runs", "split_brain", "mean_msgs", "msgs/m",
            "mean_b4_cross", "b4_cross/m",
        ],
    );
    let reps = if quick { 2 } else { 5 };
    let clique_k = if quick { 96 } else { 192 };
    let mut rng = StdRng::seed_from_u64(3);

    // Dense base: clique.
    {
        let base = gen::clique(clique_k).expect("clique base");
        let db = gen::dumbbell(&base, &mut rng).expect("dumbbell");
        let cfg = frugal_clique_config(clique_k);
        let m = db.graph().m() as f64;
        let mut split = 0;
        let mut msgs = Vec::new();
        let mut before = Vec::new();
        for seed in 0..reps {
            let r = run_dumbbell_election(&db, &cfg, clique_k, seed);
            if r.split_brain() {
                split += 1;
            }
            msgs.push(r.messages);
            before.push(r.messages_before_crossing.unwrap_or(r.messages));
        }
        let mean_m = msgs.iter().sum::<u64>() as f64 / reps as f64;
        let mean_b = before.iter().sum::<u64>() as f64 / reps as f64;
        table.push_strings(vec![
            format!("clique({clique_k})"),
            format!("{m:.0}"),
            reps.to_string(),
            split.to_string(),
            format!("{mean_m:.0}"),
            format!("{:.2}", mean_m / m),
            format!("{mean_b:.0}"),
            format!("{:.2}", mean_b / m),
        ]);
    }

    // Sparse base: random regular — messages exceed m, bridges found fast.
    {
        let nb = if quick { 64 } else { 128 };
        let base = gen::random_regular(nb, 4, &mut rng).expect("rr base");
        let db = gen::dumbbell(&base, &mut rng).expect("dumbbell");
        let cfg = ElectionConfig::tuned_for_simulation(nb);
        let m = db.graph().m() as f64;
        let mut split = 0;
        let mut msgs = Vec::new();
        let mut before = Vec::new();
        for seed in 0..reps {
            let r = run_dumbbell_election(&db, &cfg, nb, seed);
            if r.split_brain() {
                split += 1;
            }
            msgs.push(r.messages);
            before.push(r.messages_before_crossing.unwrap_or(r.messages));
        }
        let mean_m = msgs.iter().sum::<u64>() as f64 / reps as f64;
        let mean_b = before.iter().sum::<u64>() as f64 / reps as f64;
        table.push_strings(vec![
            format!("rr4({nb})"),
            format!("{m:.0}"),
            reps.to_string(),
            split.to_string(),
            format!("{mean_m:.0}"),
            format!("{:.2}", mean_m / m),
            format!("{mean_b:.0}"),
            format!("{:.2}", mean_b / m),
        ]);
    }

    // Control: sparse base with the *correct* n and the regular budget —
    // bridges are crossed and the sides merge. (A frugal run with the true
    // n would still split: length-1 walks cannot bridge cliques; that is a
    // wrong-t_mix failure, not a wrong-n one.)
    {
        let nb = if quick { 64 } else { 128 };
        let base = gen::random_regular(nb, 4, &mut rng).expect("rr base");
        let db = gen::dumbbell(&base, &mut rng).expect("dumbbell");
        let full_n = db.graph().n();
        let cfg = ElectionConfig::tuned_for_simulation(full_n);
        let mut ones = 0;
        for seed in 0..reps {
            let r = run_dumbbell_election(&db, &cfg, full_n, seed);
            if r.leaders() == 1 {
                ones += 1;
            }
        }
        table.push_strings(vec![
            format!("rr4({nb})+true n"),
            format!("{}", db.graph().m()),
            reps.to_string(),
            format!("(unique: {ones})"),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
    }

    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_has_three_rows() {
        let tables = super::run(true);
        assert_eq!(tables[0].len(), 3);
    }
}
