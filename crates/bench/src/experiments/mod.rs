//! One module per experiment of DESIGN.md §7. Each exposes
//! `run(quick: bool) -> Vec<Table>`; `quick` shrinks sweeps for smoke
//! tests and CI.

pub mod e1_upper_bound;
pub mod e2_contenders;
pub mod e3_guess_double;
pub mod e4_uniqueness;
pub mod e5_lb_graph;
pub mod e6_first_contact;
pub mod e7_sandwich;
pub mod e8_dumbbell;
pub mod e9_explicit;
pub mod e10_families;
pub mod e11_bcast_st;
pub mod e12_known_tmix;
pub mod e13_ablations;
pub mod e14_resilience;

use crate::table::Table;

/// Prints each table and writes it as CSV under `results/`.
pub fn emit(name: &str, tables: &[Table]) {
    for (i, t) in tables.iter().enumerate() {
        t.print();
        println!();
        let path = format!("results/{name}_{i}.csv");
        if let Err(e) = t.write_csv(&path) {
            eprintln!("warning: could not write {path}: {e}");
        }
    }
}
