//! **E11 — Corollaries 26–27 (broadcast & spanning tree need Ω(n/√φ)).**
//! On the lower-bound family, both tasks must discover all `n^{1-ε}`
//! cliques at `Ω(n^{2ε})` messages each: `Ω(n·n^ε) = Ω(n/√φ)` total. We
//! measure push–pull broadcast (until all informed) and BFS spanning
//! tree construction and compare with the envelope.

use crate::table::Table;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use welle_core::broadcast::run_push_pull;
use welle_graph::analysis;
use welle_graph::gen::{CliqueOfCliques, CliqueOfCliquesParams};
use welle_graph::NodeId;
use welle_lowerbound::bfs_tree_cost;

/// Runs the ε sweep.
pub fn run(quick: bool) -> Vec<Table> {
    let target_n = if quick { 400 } else { 1000 };
    let eps_list: &[f64] = if quick { &[0.3] } else { &[0.2, 0.25, 0.3, 0.35] };
    let mut table = Table::new(
        "E11 / Cor 26-27: broadcast & spanning tree vs n/sqrt(phi) envelope",
        &[
            "eps", "n", "phi", "envelope", "bcast_msgs", "bcast/env", "bfs_msgs",
            "bfs/env",
        ],
    );
    let mut rng = StdRng::seed_from_u64(23);
    for &eps in eps_list {
        let lb = CliqueOfCliques::build(CliqueOfCliquesParams::new(target_n, eps), &mut rng)
            .expect("construction");
        let graph = Arc::new(lb.graph().clone());
        let n = graph.n() as f64;
        let phi = analysis::conductance_sweep(&graph, 3000).max(1e-9);
        let envelope = n / phi.sqrt();
        let bcast = run_push_pull(&graph, 0, 42, 10_000_000, 5);
        let (bfs_msgs, _) = bfs_tree_cost(&graph, NodeId::new(0), 5);
        table.push_strings(vec![
            format!("{eps:.2}"),
            format!("{n}"),
            format!("{phi:.2e}"),
            format!("{envelope:.0}"),
            bcast.messages.to_string(),
            format!("{:.2}", bcast.messages as f64 / envelope),
            bfs_msgs.to_string(),
            format!("{:.2}", bfs_msgs as f64 / envelope),
        ]);
        assert!(bcast.all_informed, "broadcast must complete");
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_costs_scale_with_envelope() {
        let tables = super::run(true);
        for row in tables[0].to_csv().lines().skip(1) {
            let cols: Vec<&str> = row.split(',').collect();
            let bcast_ratio: f64 = cols[5].parse().unwrap();
            // Θ(1) band around the envelope (constants are generous).
            assert!(
                bcast_ratio > 0.02 && bcast_ratio < 50.0,
                "broadcast ratio {bcast_ratio} outside band: {row}"
            );
        }
    }
}
