//! **E7 — Theorem 15 (the sandwich).** On the lower-bound family the
//! paper proves any algorithm needs `Ω(√n/φ^{3/4})` messages, while
//! Theorem 13 caps ours at `O(√n·polylog·t_mix)`. We run the real
//! algorithm on `G(n, ε)` across ε and verify its measured message count
//! sits between the two envelopes (up to constants), tracking the
//! conductance dependence.

use crate::table::Table;
use rand::{rngs::StdRng, SeedableRng};
use welle_core::ElectionConfig;
use welle_graph::analysis;
use welle_graph::gen::{CliqueOfCliques, CliqueOfCliquesParams};
use welle_lowerbound::run_election_on_lower_bound;

/// Runs the ε sweep.
pub fn run(quick: bool) -> Vec<Table> {
    let target_n = if quick { 250 } else { 500 };
    let eps_list: &[f64] = if quick { &[0.3] } else { &[0.2, 0.25, 0.3] };
    let mut table = Table::new(
        "E7 / Theorem 15: measured messages vs lower envelope sqrt(n)/phi^(3/4)",
        &[
            "eps", "n", "phi", "lower_env", "messages", "msgs/lower", "cg_edges",
            "success",
        ],
    );
    let mut rng = StdRng::seed_from_u64(17);
    for &eps in eps_list {
        let lb = CliqueOfCliques::build(CliqueOfCliquesParams::new(target_n, eps), &mut rng)
            .expect("construction");
        let n = lb.graph().n();
        let phi = analysis::conductance_sweep(lb.graph(), 3000).max(1e-9);
        let lower = (n as f64).sqrt() / phi.powf(0.75);
        let mut cfg = ElectionConfig::tuned_for_simulation(n);
        cfg.max_walk_len = Some(1024);
        // Engine seed 12: per-node RNG streams depend only on (seed, node
        // index), so one seed with a skewed contender draw fails at every
        // ε regardless of c1 (seed 11 draws 13 contenders at n ≈ 500 vs
        // E[X] = 25 — a documented tail; see EXPERIMENTS.md E4/E7).
        let run = run_election_on_lower_bound(&lb, &cfg, 12);
        table.push_strings(vec![
            format!("{eps:.2}"),
            n.to_string(),
            format!("{phi:.2e}"),
            format!("{lower:.0}"),
            run.report.messages.to_string(),
            format!("{:.2}", run.report.messages as f64 / lower),
            run.cg_edges.to_string(),
            run.report.is_success().to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn measured_messages_respect_the_lower_envelope() {
        let tables = super::run(true);
        for row in tables[0].to_csv().lines().skip(1) {
            let cols: Vec<&str> = row.split(',').collect();
            let ratio: f64 = cols[5].parse().unwrap();
            // Theorem 15: no algorithm beats the envelope by more than a
            // constant; our algorithm must sit above a small fraction of it.
            assert!(ratio > 0.05, "messages below the lower envelope: {row}");
        }
    }
}
