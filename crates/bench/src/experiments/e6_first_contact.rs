//! **E6 — Lemma 18 (first inter-clique contact costs Ω(n^{2ε})).** Three
//! measurements: the closed form `(P+1)/(X+1)`, the isolated
//! port-probing simulation (these two must and do agree — this is the
//! process the proof analyses), and, for context, the *actual election
//! protocol* on the lower-bound graph (per-clique messages before its
//! first inter-clique send). The in-vivo number sits *below* the
//! sequential-probing expectation because contenders burst `√n·log n`
//! walks across all their ports at once — a burst of `b` messages
//! covers ports like `b` sequential probes but the "first contact"
//! cut-off lands mid-burst. Lemma 18 is about algorithms constrained to
//! a small message budget, which the walk burst deliberately is not.

use crate::table::Table;
use rand::{rngs::StdRng, SeedableRng};
use welle_core::ElectionConfig;
use welle_graph::gen::{CliqueOfCliques, CliqueOfCliquesParams};
use welle_lowerbound::{
    expected_first_contact, mean_first_contact, run_election_on_lower_bound, ProbeStrategy,
};

/// Runs the sweep over clique sizes.
pub fn run(quick: bool) -> Vec<Table> {
    let mut probe = Table::new(
        "E6a / Lemma 18: probes to first external port (ports = s^2, 4 external)",
        &["s", "ports", "closed_form", "simulated", "ratio"],
    );
    let mut rng = StdRng::seed_from_u64(7);
    let sizes: &[u64] = if quick { &[8, 16] } else { &[8, 16, 32, 64] };
    for &s in sizes {
        let ports = s * s;
        let exact = expected_first_contact(ports, 4);
        let sim = mean_first_contact(ports, 4, ProbeStrategy::UniformRandom, 20_000, &mut rng);
        probe.push_strings(vec![
            s.to_string(),
            ports.to_string(),
            format!("{exact:.1}"),
            format!("{sim:.1}"),
            format!("{:.3}", sim / exact),
        ]);
    }

    let mut protocol = Table::new(
        "E6b / Lemma 18 in vivo: election traffic before first inter-clique send",
        &["eps", "s", "ports~s^2", "cliques", "mean_first_contact", "vs_s^2"],
    );
    let eps_list: &[f64] = if quick { &[0.3] } else { &[0.25, 0.3, 0.35] };
    for &eps in eps_list {
        let lb = CliqueOfCliques::build(
            CliqueOfCliquesParams::new(if quick { 250 } else { 600 }, eps),
            &mut rng,
        )
        .expect("construction");
        let mut cfg = ElectionConfig::tuned_for_simulation(lb.graph().n());
        cfg.max_walk_len = Some(1024);
        let run = run_election_on_lower_bound(&lb, &cfg, 3);
        let costs = &run.first_contact_costs;
        if costs.is_empty() {
            continue;
        }
        let mean = costs.iter().sum::<u64>() as f64 / costs.len() as f64;
        let s = lb.clique_size() as f64;
        protocol.push_strings(vec![
            format!("{eps:.2}"),
            format!("{s}"),
            format!("{:.0}", s * s),
            run.num_cliques.to_string(),
            format!("{mean:.1}"),
            format!("{:.2}", mean / (s * s)),
        ]);
    }
    vec![probe, protocol]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_probe_matches_closed_form() {
        let tables = super::run(true);
        for row in tables[0].to_csv().lines().skip(1) {
            let ratio: f64 = row.split(',').nth(4).unwrap().parse().unwrap();
            assert!((ratio - 1.0).abs() < 0.1, "probe sim vs closed form: {row}");
        }
    }
}
