//! **E9 — Corollary 14 (explicit election).** Implicit election plus
//! push–pull broadcast; on well-connected graphs the broadcast's
//! `Θ(n·log n/φ)` messages dominate the sublinear election — the paper's
//! closing observation (§6).

use crate::table::Table;
use crate::workloads::Family;
use welle_core::broadcast::run_explicit_election;
use welle_graph::analysis;

/// Runs the n sweep on expanders.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick {
        &[256]
    } else {
        &[256, 512, 1024, 2048]
    };
    let mut table = Table::new(
        "E9 / Corollary 14: explicit = implicit + push-pull broadcast",
        &[
            "n", "phi", "elect_msgs", "bcast_msgs", "bcast_pred=n ln n/phi",
            "bcast/pred", "bcast/elect", "rounds",
        ],
    );
    for &n in sizes {
        let graph = Family::Expander.build(n, 3);
        let phi = analysis::conductance_sweep(&graph, 2000);
        let cfg = Family::Expander.election_config(n);
        let report = run_explicit_election(&graph, &cfg, 500_000, 9);
        let Some(b) = report.broadcast else { continue };
        let pred = n as f64 * (n as f64).ln() / phi;
        table.push_strings(vec![
            n.to_string(),
            format!("{phi:.3}"),
            report.election.messages.to_string(),
            b.messages.to_string(),
            format!("{pred:.0}"),
            format!("{:.2}", b.messages as f64 / pred),
            format!("{:.2}", b.messages as f64 / report.election.messages as f64),
            b.rounds.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_completes_broadcast() {
        let tables = super::run(true);
        assert!(!tables[0].is_empty());
    }
}
