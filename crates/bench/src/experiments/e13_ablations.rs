//! **E13 — ablations of the design constants** (not a paper table; the
//! design-choice study DESIGN.md calls for). Sweeps the three constants
//! the algorithm exposes and reports their cost/reliability trade-offs:
//!
//! * `c1` (contender density): too low ⇒ zero-leader tails (the
//!   intersection threshold cannot be met); higher ⇒ more traffic.
//! * `c2` (walk budget): too low ⇒ proxy sets too sparse to intersect;
//!   higher ⇒ message cost grows linearly in `c2`.
//! * `c_T` (schedule stretch, FixedT): pure time/robustness trade — the
//!   message count is unaffected, the decided round scales with `c_T`.

use crate::table::Table;
use crate::workloads::Family;
use welle_core::{Campaign, Election, ElectionConfig, SyncMode};

/// Runs the three sweeps.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 128 } else { 256 };
    let reps = if quick { 3 } else { 8 };
    let graph = Family::Expander.build(n, 55);
    let base = ElectionConfig::tuned_for_simulation(n);

    let mut c1_table = Table::new(
        "E13a ablation: contender constant c1 (reliability vs cost)",
        &["c1", "runs", "unique", "zero", "mean_msgs", "mean_contenders"],
    );
    for c1 in [1.0f64, 2.0, 4.0, 8.0] {
        let cfg = ElectionConfig { c1, ..base };
        let campaign = Campaign::new(Election::on(&graph).config(cfg))
            .seeds(900..900 + reps)
            .run()
            .expect("experiment configs are valid");
        let s = campaign.summary();
        let conts: u64 = campaign
            .trials
            .iter()
            .map(|t| t.report.contenders as u64)
            .sum();
        c1_table.push_strings(vec![
            format!("{c1}"),
            s.trials.to_string(),
            s.successes.to_string(),
            s.no_leader.to_string(),
            format!("{:.0}", s.messages.mean),
            format!("{:.1}", conts as f64 / s.trials as f64),
        ]);
    }

    let mut c2_table = Table::new(
        "E13b ablation: walk budget constant c2 (messages scale ~ c2)",
        &["c2", "runs", "unique", "zero", "mean_msgs", "mean_final_t_u"],
    );
    for c2 in [0.5f64, 1.0, 2.0] {
        let cfg = ElectionConfig { c2, ..base };
        let campaign = Campaign::new(Election::on(&graph).config(cfg))
            .seeds(300..300 + reps)
            .run()
            .expect("experiment configs are valid");
        let s = campaign.summary();
        let tu: u64 = campaign
            .trials
            .iter()
            .map(|t| t.report.final_walk_len as u64)
            .sum();
        c2_table.push_strings(vec![
            format!("{c2}"),
            s.trials.to_string(),
            s.successes.to_string(),
            s.no_leader.to_string(),
            format!("{:.0}", s.messages.mean),
            format!("{:.1}", tu as f64 / s.trials as f64),
        ]);
    }

    let mut ct_table = Table::new(
        "E13c ablation: schedule stretch c_T (FixedT; time scales, messages don't)",
        &["c_T", "decided_round", "messages", "success"],
    );
    for c_t in [0.5f64, 1.0, 2.0] {
        let cfg = ElectionConfig {
            c_t,
            sync: SyncMode::FixedT,
            ..base
        };
        let r = Election::on(&graph)
            .config(cfg)
            .seed(77)
            .run()
            .expect("experiment configs are valid");
        ct_table.push_strings(vec![
            format!("{c_t}"),
            r.decided_round.to_string(),
            r.messages.to_string(),
            r.is_success().to_string(),
        ]);
    }

    vec![c1_table, c2_table, ct_table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn ablations_produce_all_three_tables() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 3);
        assert!(tables.iter().all(|t| !t.is_empty()));
    }
}
