//! **E4 — Lemma 11 (unique leader w.h.p.).** Outcome census over seeds:
//! zero / one / many leaders per family and size. "One" should dominate
//! and "many" should be (near-)absent.

use crate::table::Table;
use crate::workloads::Family;
use welle_core::{Campaign, Election};

/// Runs the census.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[128] } else { &[128, 256, 512] };
    let reps = if quick { 5 } else { 15 };
    let families = [Family::Expander, Family::Hypercube, Family::Clique];

    let mut table = Table::new(
        "E4 / Lemma 11: leader-count census (unique w.h.p.)",
        &["family", "n", "runs", "zero", "one", "many", "success_rate"],
    );
    for fam in families {
        for &n in sizes {
            let graph = fam.build(n, 13);
            let cfg = fam.election_config(graph.n());
            let campaign = Campaign::new(Election::on(&graph).config(cfg))
                .label(fam.name())
                .seeds(500..500 + reps)
                .run()
                .expect("experiment configs are valid");
            let s = campaign.summary();
            table.push_strings(vec![
                fam.name().into(),
                graph.n().to_string(),
                s.trials.to_string(),
                s.no_leader.to_string(),
                s.successes.to_string(),
                s.multi_leader.to_string(),
                format!("{:.2}", s.success_rate()),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_census_mostly_unique() {
        let tables = super::run(true);
        for row in tables[0].to_csv().lines().skip(1) {
            let cols: Vec<&str> = row.split(',').collect();
            let many: u32 = cols[5].parse().unwrap();
            assert_eq!(many, 0, "multiple leaders must not appear: {row}");
            let rate: f64 = cols[6].parse().unwrap();
            assert!(rate >= 0.6, "success rate too low: {row}");
        }
    }
}
