//! **E14 — resilience under adversarial network conditions.**
//!
//! The paper analyzes a reliable synchronous CONGEST model; this
//! experiment measures how the w.h.p. election guarantee degrades when
//! the network misbehaves, on a well-connected expander versus the
//! poorly-connected §5 dumbbell:
//!
//! * **drop sweep** — success rate and message/round inflation vs the
//!   i.i.d. per-message drop rate. Light loss is absorbed by extra
//!   guess-and-double epochs (inflation), heavy loss starves the
//!   Intersection/Distinctness certificates and the contenders give up.
//! * **crash sweep** — success rate vs the fraction of nodes
//!   crash-stopped mid-election.
//!
//! Reference curves are curated in `results/resilience_curves.md`.

use std::sync::Arc;

use rand::{rngs::StdRng, SeedableRng};
use welle_core::{Campaign, CampaignSummary, Election, ElectionConfig, FaultPlan, Trial};
use welle_graph::{gen, Graph};

use crate::table::Table;

/// The two topologies contrasted: well-connected vs barely-connected.
fn families(n: usize) -> Vec<(&'static str, Arc<Graph>, ElectionConfig)> {
    let mut rng = StdRng::seed_from_u64(n as u64 ^ 0xE14);
    let expander = Arc::new(gen::random_regular(n, 4, &mut rng).expect("expander"));
    // Dumbbell of two opened (n/2)-node expanders joined by two bridges:
    // mixing is bridge-bound, the walk cap scales with n accordingly.
    let base = gen::random_regular(n / 2, 4, &mut rng).expect("dumbbell base");
    let dumbbell = Arc::new(gen::dumbbell(&base, &mut rng).expect("dumbbell").into_graph());
    let cfg_exp = ElectionConfig {
        max_walk_len: Some(512),
        ..ElectionConfig::tuned_for_simulation(expander.n())
    };
    let cfg_db = ElectionConfig {
        max_walk_len: Some((8 * n) as u32),
        ..ElectionConfig::tuned_for_simulation(dumbbell.n())
    };
    vec![("expander", expander, cfg_exp), ("dumbbell", dumbbell, cfg_db)]
}

/// Sweeps one fault axis over every family with one [`Campaign`] per
/// family, and rows the per-scenario summaries against the clean
/// control.
fn sweep(
    table: &mut Table,
    n: usize,
    seeds: std::ops::Range<u64>,
    axis: &[(String, Option<FaultPlan>)],
) {
    for (family, graph, cfg) in families(n) {
        let mut campaign = Campaign::new(Election::on(&graph).config(cfg)).label("sentinel");
        for (label, plan) in axis {
            campaign = campaign.scenario(label.clone(), &graph, cfg);
            if let Some(plan) = plan {
                campaign = campaign.faults(plan.clone());
            }
        }
        let outcome = campaign
            .without_base()
            .seeds(seeds.clone())
            .run()
            .expect("experiment configs are valid");
        let baseline = outcome.summaries[0].clone();
        for summary in &outcome.summaries {
            push_row(table, family, summary, &baseline, outcome.trials_of(&summary.scenario));
        }
    }
}

fn push_row<'a>(
    table: &mut Table,
    family: &str,
    summary: &CampaignSummary,
    baseline: &CampaignSummary,
    trials: impl Iterator<Item = &'a Trial>,
) {
    let dropped: u64 = trials.map(|t| t.report.dropped_messages).sum();
    let inflate = |x: u64, base: u64| {
        if base == 0 {
            "-".to_string()
        } else {
            format!("{:.2}", x as f64 / base as f64)
        }
    };
    table.push_strings(vec![
        family.to_string(),
        summary.scenario.clone(),
        summary.n.to_string(),
        format!("{:.2}", summary.success_rate()),
        summary.messages.median.to_string(),
        inflate(summary.messages.median, baseline.messages.median),
        summary.rounds.median.to_string(),
        inflate(summary.rounds.median, baseline.rounds.median),
        summary.gave_up.to_string(),
        dropped.to_string(),
    ]);
}

const COLUMNS: [&str; 10] = [
    "family", "scenario", "n", "success", "msgs_med", "msg_x", "rounds_med", "round_x",
    "gave_up", "dropped",
];

/// Runs the resilience sweeps.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 64 } else { 256 };
    let seeds = if quick { 1..4u64 } else { 1..11u64 };

    // Drop-rate axis: the interesting transition lives below ~5%
    // (measured; see results/resilience_curves.md).
    let rates: &[f64] = if quick {
        &[0.0, 0.005, 0.05]
    } else {
        &[0.0, 0.001, 0.005, 0.01, 0.02, 0.05]
    };
    let mut drops = Table::new(
        "E14 / resilience: success and inflation vs i.i.d. drop rate",
        &COLUMNS,
    );
    let axis: Vec<(String, Option<FaultPlan>)> = rates
        .iter()
        .map(|&p| {
            let plan = (p > 0.0).then(|| FaultPlan::new(0xD0).drop_rate(p));
            (format!("p={p}"), plan)
        })
        .collect();
    sweep(&mut drops, n, seeds.clone(), &axis);

    // Crash axis: a fraction of all nodes crash-stops mid-election.
    let fractions: &[f64] = if quick {
        &[0.0, 0.2, 0.6]
    } else {
        &[0.0, 0.05, 0.1, 0.2, 0.4, 0.8]
    };
    let crash_at = 100;
    let mut crashes = Table::new(
        "E14b / resilience: success vs crash-stop fraction (at round 100)",
        &COLUMNS,
    );
    let axis: Vec<(String, Option<FaultPlan>)> = fractions
        .iter()
        .map(|&f| {
            let plan = (f > 0.0).then(|| FaultPlan::new(0xC4).crash_fraction(f, crash_at));
            (format!("f={f}"), plan)
        })
        .collect();
    sweep(&mut crashes, n, seeds, &axis);

    vec![drops, crashes]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_covers_both_axes_and_families() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 2);
        // 2 families × 3 scenarios each.
        assert_eq!(tables[0].len(), 6);
        assert_eq!(tables[1].len(), 6);
    }
}
