//! **E1 — Theorem 13 (upper bound).** Messages `O(√n·log^{7/2}n·t_mix)`
//! and time `O(t_mix·log²n)` across well-connected families.
//!
//! For each family × n we report the measured message count, the
//! normalized ratio `messages / (√n·t_mix)` (which must grow only
//! polylogarithmically), and the fitted log-log growth exponent of
//! messages in `n` (which must stay well below 1 — sublinearity — and
//! near ½ up to polylog drift).

use crate::table::Table;
use crate::workloads::{mean, seeds, Family};
use crate::{fit, log_log_slope};
use welle_core::{Campaign, Election};
use welle_walks::{mixing_time, MixingOptions, StartPolicy};

/// Runs the sweep.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick {
        &[128, 256]
    } else {
        &[128, 256, 512, 1024]
    };
    let families = [Family::Expander, Family::Hypercube, Family::Clique];
    let nseeds = if quick { 2 } else { 3 };

    let mut table = Table::new(
        "E1 / Theorem 13: messages = O(sqrt(n) polylog n * t_mix)",
        &[
            "family", "n", "m", "t_mix", "messages", "msgs/(sqrt(n)*tmix)", "rounds",
        ],
    );
    let mut summary = Table::new(
        "E1 summary: fitted growth exponent of messages vs n (1.0 = linear)",
        &["family", "exponent", "sublinear_in_m"],
    );

    for fam in families {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut sublinear_in_m = true;
        for &n in sizes {
            if fam == Family::Clique && n > 512 {
                continue; // m = Θ(n²) graphs get heavy; 512 suffices for the fit
            }
            let graph = fam.build(n, 77);
            let n_actual = graph.n();
            let tmix = mixing_time(
                &graph,
                MixingOptions {
                    horizon: 100_000,
                    starts: StartPolicy::Sample(8),
                },
            )
            .expect("family mixes") as f64;
            let cfg = fam.election_config(n_actual);
            let campaign = Campaign::new(Election::on(&graph).config(cfg))
                .label(fam.name())
                .seeds(seeds(nseeds))
                .run()
                .expect("experiment configs are valid");
            let successes: Vec<_> = campaign
                .trials
                .iter()
                .filter(|t| t.report.is_success())
                .collect();
            let msgs: Vec<u64> = successes.iter().map(|t| t.report.messages).collect();
            let rounds: Vec<u64> = successes.iter().map(|t| t.report.engine_rounds).collect();
            if msgs.is_empty() {
                continue;
            }
            let m_mean = mean(&msgs);
            let normalized = m_mean / ((n_actual as f64).sqrt() * tmix.max(1.0));
            table.push_strings(vec![
                fam.name().into(),
                n_actual.to_string(),
                graph.m().to_string(),
                format!("{tmix:.0}"),
                format!("{m_mean:.0}"),
                format!("{normalized:.1}"),
                format!("{:.0}", mean(&rounds)),
            ]);
            xs.push(n_actual as f64);
            ys.push(m_mean);
            if m_mean >= (graph.m() as f64) * (n_actual as f64) {
                sublinear_in_m = false;
            }
        }
        if xs.len() >= 2 {
            let slope = log_log_slope(&xs, &ys);
            summary.push_strings(vec![
                fam.name().into(),
                format!("{slope:.2}"),
                sublinear_in_m.to_string(),
            ]);
        }
        let _ = fit::geometric_mean(&[1.0]);
    }
    vec![table, summary]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_rows() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].is_empty());
    }
}
