//! **E12 — the price of not knowing t_mix (vs Kutten et al. \[25\]).**
//! Three runs per size: (a) guess-and-double (this paper), (b) the \[25\]
//! baseline with a conservatively known `2·t_mix`, (c) the \[25\] baseline
//! handed the *oracle* max stopping length of run (a). Two repeated
//! findings: guess-and-double stops below `t_mix` (the properties
//! certify early), so conservative knowledge of `t_mix` is *not*
//! automatically cheaper; and even the oracle-at-max baseline can lose
//! to guessing, because contenders stop at *staggered* epochs — most
//! quit cheaper than the maximum, while the single-phase baseline makes
//! everyone walk the full length.

use crate::table::Table;
use crate::workloads::Family;
use welle_core::baselines::run_known_tmix_election;
use welle_core::Election;
use welle_walks::{mixing_time, MixingOptions, StartPolicy};

/// Runs the comparison.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[128] } else { &[128, 256, 512, 1024] };
    let mut table = Table::new(
        "E12 / vs Kutten'15 [25]: guess-and-double vs known t_mix",
        &[
            "n", "t_mix", "guess_msgs", "stop_len", "known2tmix_msgs", "oracle_msgs",
            "known/guess", "oracle/guess",
        ],
    );
    for &n in sizes {
        let graph = Family::Expander.build(n, 9);
        let tmix = mixing_time(
            &graph,
            MixingOptions {
                horizon: 100_000,
                starts: StartPolicy::Sample(8),
            },
        )
        .expect("mixes");
        let cfg = Family::Expander.election_config(n);
        let guess = Election::on(&graph)
            .config(cfg)
            .seed(3)
            .run()
            .expect("experiment configs are valid");
        if !guess.is_success() {
            continue;
        }
        let known = run_known_tmix_election(&graph, &cfg, tmix, 2, 3);
        let oracle = run_known_tmix_election(&graph, &cfg, guess.final_walk_len, 1, 3);
        table.push_strings(vec![
            n.to_string(),
            tmix.to_string(),
            guess.messages.to_string(),
            guess.final_walk_len.to_string(),
            known.messages.to_string(),
            oracle.messages.to_string(),
            format!("{:.2}", known.messages as f64 / guess.messages as f64),
            format!("{:.2}", oracle.messages as f64 / guess.messages as f64),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn oracle_beats_conservative_knowledge() {
        let tables = super::run(true);
        for row in tables[0].to_csv().lines().skip(1) {
            let cols: Vec<&str> = row.split(',').collect();
            let known_ratio: f64 = cols[6].parse().unwrap();
            let oracle_ratio: f64 = cols[7].parse().unwrap();
            // Robust orderings: the oracle never pays more than the
            // conservative 2·t_mix baseline, and neither baseline is more
            // than a small factor from guess-and-double.
            assert!(
                oracle_ratio <= known_ratio + 1e-9,
                "oracle must not exceed conservative baseline: {row}"
            );
            assert!(oracle_ratio < 4.0 && known_ratio < 8.0, "{row}");
        }
    }
}
