//! **E3 — Lemmas 3 & 6 (safety of guess-and-double).** Every contender
//! stops with a walk length `t_u = O(t_mix)`; in practice the properties
//! certify at or below `t_mix`, and the doubling overhead is at most the
//! final guess again.

use crate::table::Table;
use crate::workloads::{seeds, Family};
use welle_core::{Campaign, Election};
use welle_walks::{mixing_time, MixingOptions, StartPolicy};

/// Runs the sweep.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[128, 256] } else { &[128, 256, 512, 1024] };
    let families = [Family::Expander, Family::Hypercube, Family::Clique];
    let mut table = Table::new(
        "E3 / Lemma 3+6: final guess t_u vs t_mix (stop by O(t_mix))",
        &["family", "n", "t_mix", "final_t_u", "t_u/t_mix", "epochs"],
    );
    for fam in families {
        for &n in sizes {
            if fam == Family::Clique && n > 512 {
                continue;
            }
            let graph = fam.build(n, 31);
            let n_actual = graph.n();
            let tmix = mixing_time(
                &graph,
                MixingOptions {
                    horizon: 100_000,
                    starts: StartPolicy::Sample(8),
                },
            )
            .expect("mixes");
            let cfg = fam.election_config(n_actual);
            let campaign = Campaign::new(Election::on(&graph).config(cfg))
                .label(fam.name())
                .seeds(seeds(if quick { 1 } else { 2 }))
                .run()
                .expect("experiment configs are valid");
            for t in campaign.trials.iter().filter(|t| t.report.is_success()) {
                let r = &t.report;
                table.push_strings(vec![
                    fam.name().into(),
                    n_actual.to_string(),
                    tmix.to_string(),
                    r.final_walk_len.to_string(),
                    format!("{:.2}", r.final_walk_len as f64 / tmix.max(1) as f64),
                    r.epochs_used.to_string(),
                ]);
            }
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_rows() {
        let tables = super::run(true);
        assert!(!tables[0].is_empty());
        // Safety: the final guess never exceeds a large multiple of t_mix
        // on these families (columns hold the ratio; parse and check).
        for row in tables[0].to_csv().lines().skip(1) {
            let ratio: f64 = row.split(',').nth(4).unwrap().parse().unwrap();
            assert!(ratio <= 8.0, "t_u/t_mix ratio {ratio} too large");
        }
    }
}
