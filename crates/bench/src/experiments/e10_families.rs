//! **E10 — §1 "Results" (per-family costs and the flooding crossover).**
//! For each family, normalized message and (FixedT) time ratios against
//! the paper's predictions — expanders `O(log³n)` time /
//! `O(√n·log^{9/2}n)` messages, hypercubes an extra `log log n` — plus
//! the flood-max `Ω(m·D)` baseline for the crossover: on dense
//! well-connected graphs our sublinear algorithm wins, on sparse graphs
//! the polylog factors only pay off asymptotically.

use crate::table::Table;
use crate::workloads::Family;
use welle_core::baselines::run_flood_max;
use welle_core::{Campaign, Election, ElectionConfig, SyncMode};
use welle_walks::{mixing_time, MixingOptions, StartPolicy};

/// Runs the family comparison.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 256 } else { 1024 };
    let mut table = Table::new(
        "E10 / paper SS1 results: per-family costs vs flood-max baseline",
        &[
            "family", "n", "m", "t_mix", "welle_msgs", "flood_msgs", "welle/flood",
            "msgs/(sqrt n * tmix)",
        ],
    );
    // One Campaign over all four families (a `.families(...)` sweep);
    // t_mix and the flood-max baseline are per-family side computations.
    let mut scenarios = Vec::new();
    let mut tmixes = Vec::new();
    for fam in [Family::Expander, Family::Hypercube, Family::Clique, Family::Torus] {
        // Dense cliques and Θ(n)-mixing tori get sized down: their costs
        // grow like m and t_mix·√n respectively, and the row is about
        // normalized ratios, not scale records.
        let fam_n = match fam {
            Family::Clique => n / 2,
            Family::Torus => n.min(400),
            _ => n,
        };
        let scenario = fam.scenario(fam_n, 21);
        let tmix = mixing_time(
            &scenario.1,
            MixingOptions {
                horizon: 500_000,
                starts: StartPolicy::Sample(6),
            },
        )
        .expect("mixes") as f64;
        scenarios.push(scenario);
        tmixes.push(tmix);
    }
    let proto = Election::on(&scenarios[0].1).config(scenarios[0].2);
    let campaign = Campaign::new(proto)
        .label(scenarios[0].0.clone())
        .families(scenarios.iter().skip(1).cloned())
        .seeds([4])
        .run()
        .expect("experiment configs are valid");
    // Look trials up by scenario label rather than zipping positionally,
    // so a different seed count cannot silently misalign the rows.
    for ((label, graph, _), tmix) in scenarios.iter().zip(&tmixes) {
        let Some(trial) = campaign.trials_of(label).next() else {
            continue;
        };
        let ours = &trial.report;
        let flood = run_flood_max(graph, 4);
        if !ours.is_success() {
            continue;
        }
        let n_actual = graph.n();
        table.push_strings(vec![
            label.clone(),
            n_actual.to_string(),
            graph.m().to_string(),
            format!("{tmix:.0}"),
            ours.messages.to_string(),
            flood.messages.to_string(),
            format!("{:.2}", ours.messages as f64 / flood.messages as f64),
            format!(
                "{:.1}",
                ours.messages as f64 / ((n_actual as f64).sqrt() * tmix.max(1.0))
            ),
        ]);
    }

    // FixedT time check on one expander: decided_round vs t_mix·ln²n.
    let mut time_table = Table::new(
        "E10b / Theorem 13 time: FixedT decided round vs t_mix ln^2 n",
        &["n", "t_mix", "pred=tmix*ln^2", "decided_round", "round/pred"],
    );
    let n_t = if quick { 128 } else { 256 };
    let graph = Family::Expander.build(n_t, 8);
    let tmix = mixing_time(
        &graph,
        MixingOptions {
            horizon: 100_000,
            starts: StartPolicy::Sample(8),
        },
    )
    .expect("mixes") as f64;
    let cfg = ElectionConfig {
        sync: SyncMode::FixedT,
        ..ElectionConfig::tuned_for_simulation(n_t)
    };
    let r = Election::on(&graph)
        .config(cfg)
        .seed(6)
        .run()
        .expect("experiment configs are valid");
    if r.is_success() {
        let ln = (n_t as f64).ln();
        let pred = tmix * ln * ln;
        time_table.push_strings(vec![
            n_t.to_string(),
            format!("{tmix:.0}"),
            format!("{pred:.0}"),
            r.decided_round.to_string(),
            format!("{:.2}", r.decided_round as f64 / pred),
        ]);
    }
    vec![table, time_table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_covers_families() {
        let tables = super::run(true);
        assert!(tables[0].len() >= 3);
    }
}
