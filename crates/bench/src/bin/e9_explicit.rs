//! Regenerates the e9_explicit experiment table (see DESIGN.md §7).
//! Pass `--quick` for a reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tables = welle_bench::experiments::e9_explicit::run(quick);
    welle_bench::experiments::emit("e9_explicit", &tables);
}
