//! Regenerates the e10_families experiment table (see DESIGN.md §7).
//! Pass `--quick` for a reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tables = welle_bench::experiments::e10_families::run(quick);
    welle_bench::experiments::emit("e10_families", &tables);
}
