//! Regenerates the e7_sandwich experiment table (see DESIGN.md §7).
//! Pass `--quick` for a reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tables = welle_bench::experiments::e7_sandwich::run(quick);
    welle_bench::experiments::emit("e7_sandwich", &tables);
}
