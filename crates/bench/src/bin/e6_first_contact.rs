//! Regenerates the e6_first_contact experiment table (see DESIGN.md §7).
//! Pass `--quick` for a reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tables = welle_bench::experiments::e6_first_contact::run(quick);
    welle_bench::experiments::emit("e6_first_contact", &tables);
}
