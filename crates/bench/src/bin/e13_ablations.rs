//! Regenerates the e13_ablations experiment tables (see DESIGN.md §7).
//! Pass `--quick` for a reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tables = welle_bench::experiments::e13_ablations::run(quick);
    welle_bench::experiments::emit("e13_ablations", &tables);
}
