//! Regenerates the e3_guess_double experiment table (see DESIGN.md §7).
//! Pass `--quick` for a reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tables = welle_bench::experiments::e3_guess_double::run(quick);
    welle_bench::experiments::emit("e3_guess_double", &tables);
}
