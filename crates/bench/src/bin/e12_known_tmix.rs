//! Regenerates the e12_known_tmix experiment table (see DESIGN.md §7).
//! Pass `--quick` for a reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tables = welle_bench::experiments::e12_known_tmix::run(quick);
    welle_bench::experiments::emit("e12_known_tmix", &tables);
}
