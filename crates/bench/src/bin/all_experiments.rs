//! Runs every experiment of DESIGN.md §7 in sequence, printing each
//! table and writing CSVs under `results/`. Pass `--quick` for the
//! reduced sweeps used in smoke tests.
//!
//! Batch controls:
//!
//! - `--trial-threads K` raises the process-wide campaign default
//!   ([`welle_core::set_default_trial_threads`]), so every experiment's
//!   seed sweeps run on K pooled worker threads — results are
//!   bit-identical to the serial runs at any K.
//! - `--resume` skips experiments already recorded in
//!   `results/all_experiments.manifest` (one completed experiment name
//!   per line, appended after its CSVs hit the disk). Resume is at
//!   *experiment* granularity: an experiment interrupted half-way is
//!   re-run from its start. Without `--resume` the manifest is
//!   truncated and every experiment runs.

use std::fs;
use std::io::Write;

use welle_bench::experiments as ex;

type ExperimentFn = fn(bool) -> Vec<welle_bench::Table>;

const MANIFEST: &str = "results/all_experiments.manifest";

fn parse_args() -> (bool, bool, usize) {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let resume = argv.iter().any(|a| a == "--resume");
    let mut threads = 1usize;
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--trial-threads" {
            i += 1;
            threads = argv
                .get(i)
                .and_then(|v| v.parse().ok())
                .filter(|&k| k > 0)
                .unwrap_or_else(|| {
                    eprintln!("--trial-threads needs a positive integer");
                    std::process::exit(2);
                });
        }
        i += 1;
    }
    (quick, resume, threads)
}

fn main() {
    let (quick, resume, threads) = parse_args();
    welle_core::set_default_trial_threads(threads);
    if threads > 1 {
        println!("trial scheduler: {threads} worker threads per campaign");
    }

    let done: Vec<String> = if resume {
        fs::read_to_string(MANIFEST)
            .map(|t| t.lines().map(str::to_string).collect())
            .unwrap_or_default()
    } else {
        Vec::new()
    };
    fs::create_dir_all("results").expect("create results dir");
    let mut manifest = fs::OpenOptions::new()
        .create(true)
        .append(!done.is_empty())
        .truncate(done.is_empty())
        .write(true)
        .open(MANIFEST)
        .expect("open experiment manifest");

    let start = std::time::Instant::now();
    let runs: Vec<(&str, ExperimentFn)> = vec![
        ("e1_upper_bound", ex::e1_upper_bound::run),
        ("e2_contenders", ex::e2_contenders::run),
        ("e3_guess_double", ex::e3_guess_double::run),
        ("e4_uniqueness", ex::e4_uniqueness::run),
        ("e5_lb_graph", ex::e5_lb_graph::run),
        ("e6_first_contact", ex::e6_first_contact::run),
        ("e7_sandwich", ex::e7_sandwich::run),
        ("e8_dumbbell", ex::e8_dumbbell::run),
        ("e9_explicit", ex::e9_explicit::run),
        ("e10_families", ex::e10_families::run),
        ("e11_bcast_st", ex::e11_bcast_st::run),
        ("e12_known_tmix", ex::e12_known_tmix::run),
        ("e13_ablations", ex::e13_ablations::run),
        ("e14_resilience", ex::e14_resilience::run),
    ];
    for (name, f) in runs {
        if done.iter().any(|d| d == name) {
            println!("### {name} ### (resumed: already in {MANIFEST})\n");
            continue;
        }
        let t0 = std::time::Instant::now();
        println!("### {name} ###");
        let tables = f(quick);
        ex::emit(name, &tables);
        // Record completion only after the CSVs are on disk, so an
        // interrupted run re-runs the experiment it died inside.
        writeln!(manifest, "{name}").and_then(|_| manifest.flush()).expect("append manifest");
        println!("[{name}: {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
    println!("all experiments done in {:.1}s", start.elapsed().as_secs_f64());
}
