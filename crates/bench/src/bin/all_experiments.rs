//! Runs every experiment of DESIGN.md §7 in sequence, printing each
//! table and writing CSVs under `results/`. Pass `--quick` for the
//! reduced sweeps used in smoke tests.

use welle_bench::experiments as ex;

type ExperimentFn = fn(bool) -> Vec<welle_bench::Table>;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let start = std::time::Instant::now();
    let runs: Vec<(&str, ExperimentFn)> = vec![
        ("e1_upper_bound", ex::e1_upper_bound::run),
        ("e2_contenders", ex::e2_contenders::run),
        ("e3_guess_double", ex::e3_guess_double::run),
        ("e4_uniqueness", ex::e4_uniqueness::run),
        ("e5_lb_graph", ex::e5_lb_graph::run),
        ("e6_first_contact", ex::e6_first_contact::run),
        ("e7_sandwich", ex::e7_sandwich::run),
        ("e8_dumbbell", ex::e8_dumbbell::run),
        ("e9_explicit", ex::e9_explicit::run),
        ("e10_families", ex::e10_families::run),
        ("e11_bcast_st", ex::e11_bcast_st::run),
        ("e12_known_tmix", ex::e12_known_tmix::run),
        ("e13_ablations", ex::e13_ablations::run),
        ("e14_resilience", ex::e14_resilience::run),
    ];
    for (name, f) in runs {
        let t0 = std::time::Instant::now();
        println!("### {name} ###");
        let tables = f(quick);
        ex::emit(name, &tables);
        println!("[{name}: {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
    println!("all experiments done in {:.1}s", start.elapsed().as_secs_f64());
}
