//! Regenerates the e11_bcast_st experiment table (see DESIGN.md §7).
//! Pass `--quick` for a reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tables = welle_bench::experiments::e11_bcast_st::run(quick);
    welle_bench::experiments::emit("e11_bcast_st", &tables);
}
