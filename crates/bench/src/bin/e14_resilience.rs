//! Regenerates the e14_resilience experiment tables (adversarial
//! network conditions; see the module docs). Pass `--quick` for a
//! reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tables = welle_bench::experiments::e14_resilience::run(quick);
    welle_bench::experiments::emit("e14_resilience", &tables);
}
