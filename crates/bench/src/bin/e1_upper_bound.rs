//! Regenerates the e1_upper_bound experiment table (see DESIGN.md §7).
//! Pass `--quick` for a reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tables = welle_bench::experiments::e1_upper_bound::run(quick);
    welle_bench::experiments::emit("e1_upper_bound", &tables);
}
