//! Regenerates the e5_lb_graph experiment table (see DESIGN.md §7).
//! Pass `--quick` for a reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tables = welle_bench::experiments::e5_lb_graph::run(quick);
    welle_bench::experiments::emit("e5_lb_graph", &tables);
}
