//! Regenerates the e4_uniqueness experiment table (see DESIGN.md §7).
//! Pass `--quick` for a reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tables = welle_bench::experiments::e4_uniqueness::run(quick);
    welle_bench::experiments::emit("e4_uniqueness", &tables);
}
