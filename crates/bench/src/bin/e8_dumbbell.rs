//! Regenerates the e8_dumbbell experiment table (see DESIGN.md §7).
//! Pass `--quick` for a reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tables = welle_bench::experiments::e8_dumbbell::run(quick);
    welle_bench::experiments::emit("e8_dumbbell", &tables);
}
