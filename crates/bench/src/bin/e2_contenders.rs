//! Regenerates the e2_contenders experiment table (see DESIGN.md §7).
//! Pass `--quick` for a reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tables = welle_bench::experiments::e2_contenders::run(quick);
    welle_bench::experiments::emit("e2_contenders", &tables);
}
