//! Minimal aligned-text / CSV table writer (no external dependencies).

use std::fmt::Display;
use std::io::Write as _;
use std::path::Path;

/// A rectangular results table with a title and column headers.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifies each cell).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Convenience for rows already stringified.
    pub fn push_strings(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// CSV serialization (header row first).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV next to the experiment results.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["n", "messages"]);
        t.push(&[&16, &12345]);
        t.push(&[&1024, &7]);
        let r = t.render();
        assert!(r.contains("demo"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len(), "rows align");
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_strings(vec!["1,5".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(&[&1]);
    }
}
