//! Growth-rate fitting for scaling experiments: least-squares slope on
//! log-log data, i.e. the exponent `b` of the best fit `y = a·x^b`.

/// Least-squares slope of `ln y` against `ln x`.
///
/// # Panics
///
/// Panics if fewer than two points are supplied or any value is
/// non-positive.
pub fn log_log_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "paired data required");
    assert!(xs.len() >= 2, "need at least two points");
    let lx: Vec<f64> = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "x must be positive");
            x.ln()
        })
        .collect();
    let ly: Vec<f64> = ys
        .iter()
        .map(|&y| {
            assert!(y > 0.0, "y must be positive");
            y.ln()
        })
        .collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let cov: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = lx.iter().map(|x| (x - mx) * (x - mx)).sum();
    cov / var
}

/// Geometric mean of a slice.
///
/// # Panics
///
/// Panics on empty input or non-positive values.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let s: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0);
            v.ln()
        })
        .sum();
    (s / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_power_laws() {
        let xs: Vec<f64> = (1..=6).map(|i| (1 << i) as f64).collect();
        for b in [0.5f64, 1.0, 2.0] {
            let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x.powf(b)).collect();
            let slope = log_log_slope(&xs, &ys);
            assert!((slope - b).abs() < 1e-9, "b={b} got {slope}");
        }
    }

    #[test]
    fn tolerates_noise() {
        let xs: Vec<f64> = (1..=8).map(|i| (1 << i) as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| x.powf(1.5) * if i % 2 == 0 { 1.1 } else { 0.9 })
            .collect();
        let slope = log_log_slope(&xs, &ys);
        assert!((slope - 1.5).abs() < 0.1, "got {slope}");
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[4.0, 16.0]) - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_point_panics() {
        let _ = log_log_slope(&[1.0], &[1.0]);
    }
}
