//! Standard workload graphs and configurations shared by the experiment
//! binaries.

use std::sync::Arc;

use rand::{rngs::StdRng, SeedableRng};
use welle_core::ElectionConfig;
use welle_graph::{gen, Graph};

/// The graph families swept by the scaling experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Random 4-regular graph (expander, `t_mix = O(log n)`).
    Expander,
    /// Hypercube (`t_mix = O(log n·log log n)`); `n` rounds to a power
    /// of two.
    Hypercube,
    /// Complete graph (`t_mix = O(1)`).
    Clique,
    /// 2-D torus (`t_mix = Θ(n)`), the poorly-connected contrast.
    Torus,
}

impl Family {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Expander => "expander",
            Family::Hypercube => "hypercube",
            Family::Clique => "clique",
            Family::Torus => "torus",
        }
    }

    /// Builds an instance with approximately `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if generation fails (invalid `n` for the family).
    pub fn build(self, n: usize, seed: u64) -> Arc<Graph> {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = match self {
            Family::Expander => gen::random_regular(n, 4, &mut rng).expect("expander"),
            Family::Hypercube => {
                let dim = (n as f64).log2().round().max(1.0) as u32;
                gen::hypercube(dim).expect("hypercube")
            }
            Family::Clique => gen::clique(n).expect("clique"),
            Family::Torus => {
                let side = (n as f64).sqrt().round().max(3.0) as usize;
                gen::torus2d(side, side).expect("torus")
            }
        };
        Arc::new(g)
    }

    /// A sensible election configuration for this family at size `n`
    /// (tori get a `Θ(n)`-scale walk cap; the rest use the tuned default).
    pub fn election_config(self, n: usize) -> ElectionConfig {
        let mut cfg = ElectionConfig::tuned_for_simulation(n);
        if self == Family::Torus {
            cfg.max_walk_len = Some((8 * n) as u32);
        }
        cfg
    }

    /// The `(label, graph, config)` triple consumed by
    /// [`welle_core::Campaign::families`]: this family at approximately
    /// `n` nodes with its standard configuration.
    pub fn scenario(self, n: usize, seed: u64) -> (String, Arc<Graph>, ElectionConfig) {
        let graph = self.build(n, seed);
        let cfg = self.election_config(graph.n());
        (self.name().to_string(), graph, cfg)
    }
}

/// The default seeds used for Monte-Carlo repetitions.
pub fn seeds(count: usize) -> Vec<u64> {
    (0..count as u64).map(|i| 1000 + 7 * i).collect()
}

/// Mean of a slice of counts.
pub fn mean(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<u64>() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_build_at_small_sizes() {
        for fam in [Family::Expander, Family::Hypercube, Family::Clique, Family::Torus] {
            let g = fam.build(64, 1);
            assert!(g.n() >= 36, "{}: n = {}", fam.name(), g.n());
            assert!(welle_graph::analysis::is_connected(&g));
        }
    }

    #[test]
    fn hypercube_rounds_to_power_of_two() {
        let g = Family::Hypercube.build(100, 1);
        assert_eq!(g.n(), 128);
    }

    #[test]
    fn seeds_are_distinct() {
        let s = seeds(10);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2, 4]), 3.0);
    }
}
