//! Experiment harness shared by the `e*` table binaries and the criterion
//! benches: plain-text/CSV tables, growth-rate fitting, and the standard
//! workload graphs.
//!
//! Every quantitative claim of the paper maps to one binary (see
//! DESIGN.md §7); run them all with
//! `cargo run --release -p welle-bench --bin all_experiments`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fit;
pub mod table;
pub mod workloads;

pub use fit::log_log_slope;
pub use table::Table;
