//! The §5 dumbbell / bridge-crossing experiment (Theorem 28): knowledge
//! of `n` is critical.
//!
//! Two copies of a base graph are joined by two bridges. We run the
//! election on the dumbbell while every node is *parameterized with the
//! wrong network size* (its own side's `n₀`), emulating "n is not known":
//! each side behaves exactly as it would on its own copy until a message
//! crosses a bridge. The observable predictions:
//!
//! * with the wrong `n`, both sides elect their own leader (2 leaders)
//!   whenever no bridge crossing happens early — the algorithm *fails*;
//! * with the correct `n = 2n₀`, a unique leader emerges;
//! * forcing success without knowing `n` requires discovering a bridge,
//!   which costs `Ω(m)` messages (bridge crossing, Lemma 30).

use std::sync::Arc;

use welle_congest::{TransmitEvent, TransmitObserver};
use welle_graph::gen::Dumbbell;
use welle_graph::EdgeId;

use welle_core::{Election, ElectionConfig};

/// Observer counting bridge crossings.
#[derive(Clone, Debug)]
pub struct BridgeObserver {
    bridges: [EdgeId; 2],
    /// Messages transmitted before the first bridge crossing.
    pub messages_before_crossing: Option<u64>,
    /// Total bridge crossings.
    pub crossings: u64,
    total: u64,
}

impl BridgeObserver {
    /// Creates an observer for the given dumbbell.
    pub fn new(db: &Dumbbell) -> Self {
        BridgeObserver {
            bridges: db.bridges(),
            messages_before_crossing: None,
            crossings: 0,
            total: 0,
        }
    }

    /// Total messages observed.
    pub fn total_messages(&self) -> u64 {
        self.total
    }
}

impl TransmitObserver for BridgeObserver {
    fn on_transmit(&mut self, ev: &TransmitEvent) {
        self.total += 1;
        if self.bridges.contains(&ev.edge) {
            self.crossings += 1;
            if self.messages_before_crossing.is_none() {
                self.messages_before_crossing = Some(self.total - 1);
            }
        }
    }
}

/// Result of one dumbbell election run.
#[derive(Clone, Debug)]
pub struct DumbbellReport {
    /// Leaders found on the left side.
    pub left_leaders: usize,
    /// Leaders found on the right side.
    pub right_leaders: usize,
    /// Messages before the first bridge crossing (`None`: never crossed).
    pub messages_before_crossing: Option<u64>,
    /// Total bridge crossings.
    pub crossings: u64,
    /// Total messages.
    pub messages: u64,
    /// Edges of the dumbbell (for `Ω(m)` comparisons).
    pub m: usize,
}

impl DumbbellReport {
    /// Total number of leaders.
    pub fn leaders(&self) -> usize {
        self.left_leaders + self.right_leaders
    }

    /// The failure the theorem predicts: both sides elected.
    pub fn split_brain(&self) -> bool {
        self.left_leaders >= 1 && self.right_leaders >= 1
    }
}

/// Runs the election on a dumbbell with every node believing the network
/// has `believed_n` nodes (pass `db.half_n()` to model "n unknown /
/// wrongly assumed", or `db.graph().n()` for the truthful control).
pub fn run_dumbbell_election(
    db: &Dumbbell,
    cfg: &ElectionConfig,
    believed_n: usize,
    seed: u64,
) -> DumbbellReport {
    let graph = Arc::new(db.graph().clone());
    // The believed-n bandwidth budget would misfire on the true n;
    // disable enforcement for this experiment.
    let cfg = ElectionConfig {
        enforce_bandwidth: false,
        ..*cfg
    };
    let mut obs = BridgeObserver::new(db);
    let report = Election::on(&graph)
        .config(cfg)
        .believing_n(believed_n)
        .seed(seed)
        .observer(&mut obs)
        .run()
        .unwrap_or_else(|e| panic!("{e}"));

    let left = report.leaders.iter().filter(|&&i| i < db.half_n()).count();
    DumbbellReport {
        left_leaders: left,
        right_leaders: report.leaders.len() - left,
        messages_before_crossing: obs.messages_before_crossing,
        crossings: obs.crossings,
        messages: obs.total_messages(),
        m: report.m,
    }
}

/// The two *open graphs* of a dumbbell (each side without the bridges),
/// re-indexed to `0..half_n`. This is the censored world of Theorem 28's
/// proof: an execution in which no message ever crosses a bridge is
/// indistinguishable from running on these graphs separately.
pub fn open_halves(db: &Dumbbell) -> (welle_graph::Graph, welle_graph::Graph) {
    let g = db.graph();
    let n0 = db.half_n();
    let mut left = welle_graph::GraphBuilder::new(n0);
    let mut right = welle_graph::GraphBuilder::new(n0);
    for (e, u, v) in g.edges() {
        if db.is_bridge(e) {
            continue;
        }
        if db.is_left(u) {
            // welle-lint: allow(no-lib-unwrap) — invariant: endpoints come from a built graph, so indices are in range and edges are simple
            left.add_edge(u.index(), v.index()).expect("left edge valid");
        } else {
            right
                .add_edge(u.index() - n0, v.index() - n0)
                // welle-lint: allow(no-lib-unwrap) — invariant: endpoints come from a built graph, so indices are in range and edges are simple
                .expect("right edge valid");
        }
    }
    (
        // welle-lint: allow(no-lib-unwrap) — invariant: the dumbbell construction puts at least one non-bridge edge in each half
        left.build().expect("left half nonempty"),
        // welle-lint: allow(no-lib-unwrap) — invariant: the dumbbell construction puts at least one non-bridge edge in each half
        right.build().expect("right half nonempty"),
    )
}

/// A minimal-budget election configuration for the §5 experiments: a
/// single phase of 1-step walks (cliques mix in `O(1)`), large messages.
/// On clique bases this sends `o(m)` messages, which is exactly the
/// regime where Theorem 28 bites.
pub fn frugal_clique_config(believed_n: usize) -> ElectionConfig {
    let mut cfg = ElectionConfig::tuned_for_simulation(believed_n);
    cfg.fixed_walk_len = Some(1);
    cfg.msg_size = welle_core::MsgSizeMode::Large;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use welle_core::Decision;
    use welle_graph::gen;

    fn clique_dumbbell(k: usize, seed: u64) -> Dumbbell {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = gen::clique(k).unwrap();
        gen::dumbbell(&base, &mut rng).unwrap()
    }

    #[test]
    fn censored_world_elects_two_leaders() {
        // Theorem 28's hypothetical: with no bridge crossing, each side's
        // execution equals a standalone run on its open graph — and each
        // standalone run elects its own leader.
        let db = clique_dumbbell(128, 3);
        let (left, right) = open_halves(&db);
        assert_eq!(left.n(), 128);
        assert_eq!(right.n(), 128);
        let cfg = frugal_clique_config(128);
        let mut total_leaders = 0;
        for (side, g) in [("left", left), ("right", right)] {
            let g = std::sync::Arc::new(g);
            let report = Election::on(&g).config(cfg).seed(7).run().unwrap();
            assert!(report.is_success(), "{side} half fails: {:?}", report.leaders);
            total_leaders += report.leaders.len();
        }
        assert_eq!(total_leaders, 2, "two independent leaders");
    }

    #[test]
    fn bridge_crossing_costs_on_the_order_of_m() {
        // Lemma 30 flavour: the first bridge crossing does not come before
        // a constant fraction of m messages in expectation (bridges are 2
        // uniformly-placed edges among m).
        let db = clique_dumbbell(96, 5);
        let m = db.graph().m() as u64;
        let cfg = frugal_clique_config(96);
        let mut costs = Vec::new();
        for seed in 0..4u64 {
            let report = run_dumbbell_election(&db, &cfg, 96, seed);
            if let Some(c) = report.messages_before_crossing {
                costs.push(c);
            } else {
                costs.push(report.messages); // never crossed: even stronger
            }
        }
        let mean = costs.iter().sum::<u64>() as f64 / costs.len() as f64;
        assert!(
            mean as u64 >= m / 50,
            "first crossing after only {mean} messages; m = {m}"
        );
    }

    #[test]
    fn frugal_budget_is_sublinear_in_m_and_splits_brains() {
        // On a dense base the whole (wrong-n) election spends o(m)
        // messages per side, so with constant probability no bridge is
        // crossed and both sides elect. Seeds fixed to a split outcome.
        let db = clique_dumbbell(192, 9);
        let m = db.graph().m() as u64;
        let cfg = frugal_clique_config(192);
        let mut split_seen = false;
        for seed in 0..3u64 {
            let report = run_dumbbell_election(&db, &cfg, 192, seed);
            if report.crossings == 0 {
                assert!(
                    report.split_brain(),
                    "no crossing must imply two leaders: {report:?}"
                );
                assert!(
                    report.messages < m,
                    "frugal run must be sublinear in m: {} vs {m}",
                    report.messages
                );
                split_seen = true;
            }
        }
        assert!(split_seen, "no seed produced a crossing-free run");
    }

    #[test]
    fn correct_n_on_sparse_base_elects_one_leader() {
        let mut rng = StdRng::seed_from_u64(11);
        let base = gen::random_regular(48, 4, &mut rng).unwrap();
        let db = gen::dumbbell(&base, &mut rng).unwrap();
        let cfg = ElectionConfig::tuned_for_simulation(db.graph().n());
        let report = run_dumbbell_election(&db, &cfg, db.graph().n(), 5);
        assert_eq!(report.leaders(), 1, "{report:?}");
    }

    #[test]
    fn decision_accessor_consistency() {
        // Sanity: leaders counted by side match the node decisions.
        let db = clique_dumbbell(64, 2);
        let cfg = frugal_clique_config(64);
        let report = run_dumbbell_election(&db, &cfg, 64, 1);
        let _ = Decision::Leader; // silence unused import in cfg(test)
        assert_eq!(
            report.leaders(),
            report.left_leaders + report.right_leaders
        );
    }
}
