//! The clique communication graph `CG` of §4.1 and its event tracking.
//!
//! `CG` has one vertex per clique of the lower-bound graph; a (directed,
//! deduplicated-to-simple) edge appears when the first message crosses the
//! corresponding inter-clique edge of `G`. The lower-bound proof hinges on
//! these facts, which the observer lets us *measure*:
//!
//! * Lemma 18 — before its first inter-clique send, a clique has spent
//!   `Ω(n^{2ε})` messages in expectation;
//! * Lemma 19 — an algorithm sending `M·n^{2ε}` messages creates only
//!   `O(M)` CG edges;
//! * Lemma 20 — connected components of `CG` rarely merge (event `Disj`).

use welle_congest::{TransmitEvent, TransmitObserver};
use welle_graph::gen::CliqueOfCliques;

/// Union–find over cliques (components of `CG`).
#[derive(Clone, Debug)]
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Returns `true` if the two were in different components.
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb as u32;
        true
    }
}

/// Observer reconstructing the clique communication graph from the
/// transmission stream.
#[derive(Clone, Debug)]
pub struct CliqueCommObserver {
    clique_of: Vec<u32>,
    num_cliques: usize,
    /// Messages sent by each clique's nodes so far.
    msgs_by_clique: Vec<u64>,
    /// Messages a clique had sent when it first sent inter-clique
    /// (`None` until it does) — the Lemma 18 statistic.
    first_contact_cost: Vec<Option<u64>>,
    /// Simple-graph CG edges seen (unordered clique pairs).
    cg_edges: std::collections::HashSet<(u32, u32)>,
    /// Rounds at which each CG edge appeared.
    edge_rounds: Vec<u64>,
    components: UnionFind,
    merges: u64,
    touched_cliques: std::collections::HashSet<u32>,
}

impl CliqueCommObserver {
    /// Creates an observer for the given lower-bound graph.
    pub fn new(lb: &CliqueOfCliques) -> Self {
        let n = lb.graph().n();
        let clique_of: Vec<u32> = (0..n)
            .map(|u| lb.clique_of(welle_graph::NodeId::new(u)) as u32)
            .collect();
        let num_cliques = lb.num_cliques();
        CliqueCommObserver {
            clique_of,
            num_cliques,
            msgs_by_clique: vec![0; num_cliques],
            first_contact_cost: vec![None; num_cliques],
            cg_edges: std::collections::HashSet::new(),
            edge_rounds: Vec::new(),
            components: UnionFind::new(num_cliques),
            merges: 0,
            touched_cliques: std::collections::HashSet::new(),
        }
    }

    /// Number of distinct CG edges created (Lemma 19's `O(M)`).
    pub fn cg_edge_count(&self) -> usize {
        self.cg_edges.len()
    }

    /// Rounds at which CG edges appeared, in order.
    pub fn edge_rounds(&self) -> &[u64] {
        &self.edge_rounds
    }

    /// Component merges beyond the first edge of each component — a
    /// *violation count* for event `Disj` would require spontaneity
    /// bookkeeping; this reports how many unions actually joined two
    /// previously-nontrivial components.
    pub fn component_merges(&self) -> u64 {
        self.merges
    }

    /// Messages clique `c` had sent when it first messaged another clique
    /// (Lemma 18's `Msgs(C)`); `None` if it never did.
    pub fn first_contact_cost(&self, c: usize) -> Option<u64> {
        self.first_contact_cost[c]
    }

    /// All first-contact costs that materialized.
    pub fn first_contact_costs(&self) -> Vec<u64> {
        self.first_contact_cost.iter().flatten().copied().collect()
    }

    /// Total messages sent by nodes of clique `c`.
    pub fn messages_by_clique(&self, c: usize) -> u64 {
        self.msgs_by_clique[c]
    }

    /// Cliques that sent or received at least one inter-clique message.
    pub fn touched_cliques(&self) -> usize {
        self.touched_cliques.len()
    }

    /// Number of cliques in the underlying graph.
    pub fn num_cliques(&self) -> usize {
        self.num_cliques
    }
}

impl TransmitObserver for CliqueCommObserver {
    fn on_transmit(&mut self, ev: &TransmitEvent) {
        let cf = self.clique_of[ev.from.index()];
        let ct = self.clique_of[ev.to.index()];
        self.msgs_by_clique[cf as usize] += 1;
        if cf == ct {
            return;
        }
        // First inter-clique send of this clique: record Lemma 18 cost.
        if self.first_contact_cost[cf as usize].is_none() {
            self.first_contact_cost[cf as usize] = Some(self.msgs_by_clique[cf as usize]);
        }
        self.touched_cliques.insert(cf);
        self.touched_cliques.insert(ct);
        let key = (cf.min(ct), cf.max(ct));
        if self.cg_edges.insert(key) {
            self.edge_rounds.push(ev.round);
            // A union that joins two components which both already had
            // edges is a `Disj`-style merge.
            let a_trivial = !self
                .cg_edges
                .iter()
                .any(|&(x, y)| (x == key.0 || y == key.0) && (x, y) != key);
            let b_trivial = !self
                .cg_edges
                .iter()
                .any(|&(x, y)| (x == key.1 || y == key.1) && (x, y) != key);
            let joined = self.components.union(key.0 as usize, key.1 as usize);
            if joined && !a_trivial && !b_trivial {
                self.merges += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use welle_graph::gen::{CliqueOfCliques, CliqueOfCliquesParams};
    use welle_graph::{EdgeId, NodeId, Port};

    fn lb() -> CliqueOfCliques {
        let mut rng = StdRng::seed_from_u64(5);
        CliqueOfCliques::build(CliqueOfCliquesParams::new(300, 0.3), &mut rng).unwrap()
    }

    fn event(from: usize, to: usize, round: u64) -> TransmitEvent {
        TransmitEvent {
            round,
            from: NodeId::new(from),
            from_port: Port::new(0),
            to: NodeId::new(to),
            to_port: Port::new(0),
            edge: EdgeId::new(0),
            bits: 8,
        }
    }

    #[test]
    fn intra_clique_traffic_creates_no_edges() {
        let lb = lb();
        let mut obs = CliqueCommObserver::new(&lb);
        let s = lb.clique_size();
        for r in 0..10 {
            obs.on_transmit(&event(0, 1, r)); // same clique (first s nodes)
        }
        let _ = s;
        assert_eq!(obs.cg_edge_count(), 0);
        assert_eq!(obs.messages_by_clique(0), 10);
        assert_eq!(obs.first_contact_cost(0), None);
    }

    #[test]
    fn first_contact_cost_counts_prior_messages() {
        let lb = lb();
        let s = lb.clique_size();
        let mut obs = CliqueCommObserver::new(&lb);
        // 7 intra-clique messages, then one inter-clique (clique 0 → 1).
        for r in 0..7 {
            obs.on_transmit(&event(0, 1, r));
        }
        obs.on_transmit(&event(0, s, 7));
        assert_eq!(obs.first_contact_cost(0), Some(8));
        assert_eq!(obs.cg_edge_count(), 1);
        assert_eq!(obs.touched_cliques(), 2);
    }

    #[test]
    fn duplicate_inter_clique_edges_are_simple() {
        let lb = lb();
        let s = lb.clique_size();
        let mut obs = CliqueCommObserver::new(&lb);
        obs.on_transmit(&event(0, s, 1));
        obs.on_transmit(&event(s, 0, 2));
        obs.on_transmit(&event(0, s, 3));
        assert_eq!(obs.cg_edge_count(), 1);
        assert_eq!(obs.edge_rounds(), &[1]);
    }

    #[test]
    fn union_find_components() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.find(1), uf.find(2));
    }
}
