//! Packaged experiment drivers for the §4 lower-bound claims, reused by
//! the `welle-bench` tables and the integration tests.

use std::sync::Arc;

use welle_congest::{Engine, EngineConfig};
use welle_core::{Election, ElectionConfig, ElectionReport};
use welle_graph::gen::CliqueOfCliques;
use welle_graph::{Graph, NodeId};

use crate::cg::CliqueCommObserver;

/// An election run on the lower-bound graph with CG tracking.
#[derive(Clone, Debug)]
pub struct LowerBoundRun {
    /// The plain election report.
    pub report: ElectionReport,
    /// Distinct clique-communication-graph edges created (Lemma 19).
    pub cg_edges: usize,
    /// Per-clique messages before first inter-clique contact (Lemma 18).
    pub first_contact_costs: Vec<u64>,
    /// Cliques that took part in any inter-clique exchange.
    pub touched_cliques: usize,
    /// Number of cliques.
    pub num_cliques: usize,
    /// Clique size `s` (ports per clique `≈ s²`).
    pub clique_size: usize,
    /// The conductance scale `α = n^{-2ε}` of the construction.
    pub alpha: f64,
}

/// Runs the election on a lower-bound graph, reconstructing the clique
/// communication graph from the traffic.
pub fn run_election_on_lower_bound(
    lb: &CliqueOfCliques,
    cfg: &ElectionConfig,
    seed: u64,
) -> LowerBoundRun {
    let graph = Arc::new(lb.graph().clone());
    let mut obs = CliqueCommObserver::new(lb);
    let report = Election::on(&graph)
        .config(*cfg)
        .seed(seed)
        .observer(&mut obs)
        .run()
        .unwrap_or_else(|e| panic!("{e}"));
    LowerBoundRun {
        report,
        cg_edges: obs.cg_edge_count(),
        first_contact_costs: obs.first_contact_costs(),
        touched_cliques: obs.touched_cliques(),
        num_cliques: lb.num_cliques(),
        clique_size: lb.clique_size(),
        alpha: lb.alpha(),
    }
}

/// Message cost of building a BFS spanning tree from `root` (the
/// Corollary 27 reference task: every clique must be discovered, so the
/// cost is `Ω(n/√φ)` on the lower-bound family).
pub fn bfs_tree_cost(graph: &Arc<Graph>, root: NodeId, seed: u64) -> (u64, u64) {
    let mut engine = Engine::from_fn(
        Arc::clone(graph),
        EngineConfig {
            seed,
            bandwidth_bits: None,
        },
        |i| welle_congest::testing::BfsWave::new(i == root.index()),
    );
    let outcome = engine.run(10 * graph.n() as u64 + 100);
    (engine.metrics().messages, outcome.round())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use welle_core::SyncMode;
    use welle_graph::gen::CliqueOfCliquesParams;

    #[test]
    fn lower_bound_election_tracks_cg() {
        let mut rng = StdRng::seed_from_u64(2);
        let lb =
            CliqueOfCliques::build(CliqueOfCliquesParams::new(200, 0.3), &mut rng).unwrap();
        let cfg = ElectionConfig {
            sync: SyncMode::Adaptive,
            ..ElectionConfig::default()
        };
        let run = run_election_on_lower_bound(&lb, &cfg, 3);
        // The election succeeds and necessarily talks across cliques.
        assert!(run.report.is_success(), "{:?}", run.report.leaders);
        assert!(run.cg_edges > 0);
        assert!(!run.first_contact_costs.is_empty());
        assert!(run.touched_cliques <= run.num_cliques);
    }

    #[test]
    fn bfs_tree_visits_every_edge_once_in_each_direction_at_most() {
        let graph = Arc::new(welle_graph::gen::torus2d(5, 5).unwrap());
        let (messages, rounds) = bfs_tree_cost(&graph, NodeId::new(0), 1);
        let m = graph.m() as u64;
        assert!(messages >= m, "BFS floods at least m messages");
        assert!(messages <= 2 * m + graph.n() as u64);
        assert!(rounds >= 4);
    }
}
