//! The Lemma 18 port-probing process, isolated from any algorithm.
//!
//! A clique of the §4.1 graph has `≈ s²` ports, of which exactly 4 lead
//! outside, and nodes cannot tell which (KT0 + shuffled ports). Lemma 18:
//! any algorithm that has received nothing from outside must, in
//! expectation, push `Ω(s²)` messages through fresh ports before one
//! leaves the clique. This module measures that directly with the
//! canonical strategy (probe previously unused ports, uniformly at
//! random) and with a worst-case adversarial ordering.

use rand::seq::SliceRandom;
use rand::Rng;

/// How a probing strategy picks the next unused port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeStrategy {
    /// Uniformly random among unused ports (the proof's model).
    UniformRandom,
    /// Deterministic sweep in index order — since ports were shuffled at
    /// construction, this is distributionally identical to uniform for
    /// the *first* success, and serves as a cross-check.
    Sequential,
}

/// Result of one probing simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeOutcome {
    /// Messages (port uses) before and including the first external hit.
    pub messages: u64,
    /// Total ports of the clique.
    pub total_ports: u64,
    /// External ports of the clique (4 in the paper's construction).
    pub external_ports: u64,
}

/// Simulates probing a clique with `total_ports` ports of which
/// `external_ports` lead outside; returns the number of probes until the
/// first external port is hit.
///
/// # Panics
///
/// Panics if `external_ports == 0` or `external_ports > total_ports`.
pub fn probe_until_external<R: Rng + ?Sized>(
    total_ports: u64,
    external_ports: u64,
    strategy: ProbeStrategy,
    rng: &mut R,
) -> ProbeOutcome {
    assert!(external_ports > 0, "need at least one external port");
    assert!(external_ports <= total_ports, "more externals than ports");
    let mut ports: Vec<bool> = (0..total_ports)
        .map(|i| i < external_ports)
        .collect();
    // Random placement of the external ports (the construction shuffles).
    ports.shuffle(rng);
    let messages = match strategy {
        ProbeStrategy::Sequential => {
            // welle-lint: allow(no-lib-unwrap) — invariant: external_ports >= 1 by the §5 construction, so the shuffled vec contains a true entry
            ports.iter().position(|&ext| ext).expect("external exists") as u64 + 1
        }
        ProbeStrategy::UniformRandom => {
            let mut order: Vec<usize> = (0..total_ports as usize).collect();
            order.shuffle(rng);
            order
                .iter()
                .position(|&i| ports[i])
                // welle-lint: allow(no-lib-unwrap) — invariant: external_ports >= 1 by the §5 construction, so the shuffled vec contains a true entry
                .expect("external exists") as u64
                + 1
        }
    };
    ProbeOutcome {
        messages,
        total_ports,
        external_ports,
    }
}

/// Mean probes-to-first-external over `samples` independent simulations.
///
/// The exact expectation for uniform probing without replacement is
/// `(P + 1) / (X + 1)` for `P` ports and `X` externals — `≈ s²/4 + O(1)`
/// in the paper's construction, i.e. `Ω(n^{2ε})`.
pub fn mean_first_contact<R: Rng + ?Sized>(
    total_ports: u64,
    external_ports: u64,
    strategy: ProbeStrategy,
    samples: usize,
    rng: &mut R,
) -> f64 {
    let mut total = 0u64;
    for _ in 0..samples {
        total += probe_until_external(total_ports, external_ports, strategy, rng).messages;
    }
    total as f64 / samples as f64
}

/// The closed-form expectation `(P + 1) / (X + 1)`.
pub fn expected_first_contact(total_ports: u64, external_ports: u64) -> f64 {
    (total_ports as f64 + 1.0) / (external_ports as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn closed_form_matches_simulation() {
        let mut rng = StdRng::seed_from_u64(3);
        for (ports, ext) in [(100u64, 4u64), (400, 4), (50, 1)] {
            let expect = expected_first_contact(ports, ext);
            for strategy in [ProbeStrategy::UniformRandom, ProbeStrategy::Sequential] {
                let mean = mean_first_contact(ports, ext, strategy, 20_000, &mut rng);
                assert!(
                    (mean - expect).abs() < 0.06 * expect,
                    "{strategy:?} ports={ports} ext={ext}: mean {mean} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn cost_scales_quadratically_in_clique_size() {
        // Lemma 18: messages before first contact = Ω(s²) for cliques of
        // size s with 4 external ports.
        let mut rng = StdRng::seed_from_u64(9);
        let m10 = mean_first_contact(10 * 10, 4, ProbeStrategy::UniformRandom, 20_000, &mut rng);
        let m20 = mean_first_contact(20 * 20, 4, ProbeStrategy::UniformRandom, 20_000, &mut rng);
        let ratio = m20 / m10;
        assert!(
            ratio > 3.0 && ratio < 5.0,
            "doubling s should ~4x the cost, got {ratio}"
        );
    }

    #[test]
    fn single_probe_when_all_external() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = probe_until_external(4, 4, ProbeStrategy::UniformRandom, &mut rng);
        assert_eq!(out.messages, 1);
    }

    #[test]
    #[should_panic(expected = "at least one external")]
    fn zero_externals_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = probe_until_external(10, 0, ProbeStrategy::Sequential, &mut rng);
    }
}
