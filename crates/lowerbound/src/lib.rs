//! Machinery for the paper's lower-bound experiments (§4 and §5).
//!
//! * [`CliqueCommObserver`] reconstructs the *clique communication graph*
//!   `CG` of §4.1 from the simulator's transmission stream: CG edges
//!   (Lemma 19), per-clique first-contact costs (Lemma 18), component
//!   merges (Lemma 20's event `Disj`).
//! * [`probing`] isolates the Lemma 18 port-probing process and verifies
//!   its `Ω(s²)` expectation in closed form and by simulation.
//! * [`bridge`] runs the §5 dumbbell experiment: the election with a
//!   wrongly-believed network size split-brains (two leaders), showing
//!   the knowledge of `n` is critical (Theorem 28).
//! * [`experiments`] packages these into drivers reused by the
//!   `welle-bench` tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cg;

pub mod bridge;
pub mod experiments;
pub mod probing;

pub use bridge::{run_dumbbell_election, BridgeObserver, DumbbellReport};
pub use cg::CliqueCommObserver;
pub use experiments::{bfs_tree_cost, run_election_on_lower_bound, LowerBoundRun};
pub use probing::{
    expected_first_contact, mean_first_contact, probe_until_external, ProbeOutcome, ProbeStrategy,
};
