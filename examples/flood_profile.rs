//! Scratch profiling harness for the engine hot path (not part of the
//! test suite; run with `cargo run --release --example flood_profile`).

use std::sync::Arc;
use std::time::Instant;

use rand::{rngs::StdRng, SeedableRng};
use welle::congest::testing::FloodMax;
use welle::congest::{Engine, EngineConfig, ThreadedEngine};
use welle::graph::gen;

fn main() {
    let n = 1024usize;
    let mut rng = StdRng::seed_from_u64(1);
    let g = Arc::new(gen::random_regular(n, 4, &mut rng).unwrap());
    let iters = 300;
    // welle-lint: allow(no-ambient-entropy) — wall-clock timing for human-facing profiling output only; never feeds protocol state
    let t0 = Instant::now();
    for _ in 0..iters {
        let nodes = (0..n).map(|i| FloodMax::new(i as u64)).collect();
        let mut e = Engine::new(Arc::clone(&g), nodes, EngineConfig::default());
        e.run(100_000);
    }
    println!("serial     {:8} ns", t0.elapsed().as_nanos() / iters);
    for threads in [1usize, 2, 4, 8] {
        // welle-lint: allow(no-ambient-entropy) — wall-clock timing for human-facing profiling output only; never feeds protocol state
        let t0 = Instant::now();
        for _ in 0..iters {
            let nodes = (0..n).map(|i| FloodMax::new(i as u64)).collect();
            let mut e = ThreadedEngine::new(Arc::clone(&g), nodes, EngineConfig::default(), threads);
            e.run(100_000);
        }
        println!("threaded{threads}  {:8} ns", t0.elapsed().as_nanos() / iters);
    }
}
