//! Corollary 14: explicit election = implicit election + push–pull
//! broadcast, and on well-connected graphs the broadcast is the dominant
//! message cost — "the major communication cost ... comes from
//! broadcasting the leader information ... rather than the process of
//! electing a leader" (§6).
//!
//! ```sh
//! cargo run --release --example explicit_broadcast
//! ```

use std::sync::Arc;

use rand::{rngs::StdRng, SeedableRng};
use welle::core::broadcast::run_explicit_election;
use welle::core::ElectionConfig;
use welle::graph::gen;

fn main() {
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>8}",
        "n", "elect msgs", "bcast msgs", "total", "rounds"
    );
    for &n in &[256usize, 512, 1024] {
        let mut rng = StdRng::seed_from_u64(n as u64 + 1);
        let graph = Arc::new(gen::random_regular(n, 4, &mut rng).expect("expander"));
        let cfg = ElectionConfig::tuned_for_simulation(n);
        let report = run_explicit_election(&graph, &cfg, 100_000, 5);
        let b = report.broadcast.expect("unique leader found");
        assert!(report.is_success());
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>8}",
            n,
            report.election.messages,
            b.messages,
            report.total_messages(),
            b.rounds
        );
    }
    println!(
        "\nThe broadcast stage costs Θ(n·log n/φ) messages — linear in n —
while implicit election stays sublinear (√n·polylog): for large
well-connected networks the broadcast dominates, which is why the
implicit/explicit distinction matters (Cor. 14)."
    );
}
