//! A guided tour of the §4 lower-bound machinery: build the
//! clique-of-cliques graph (Figures 1–2), check Lemma 16's conductance,
//! watch Lemma 18's first-contact costs, and reconstruct the clique
//! communication graph from live election traffic.
//!
//! ```sh
//! cargo run --release --example lower_bound_tour
//! ```

use rand::{rngs::StdRng, SeedableRng};
use welle::core::ElectionConfig;
use welle::graph::analysis;
use welle::graph::gen::{CliqueOfCliques, CliqueOfCliquesParams};
use welle::lowerbound::{expected_first_contact, run_election_on_lower_bound};

fn main() {
    let mut rng = StdRng::seed_from_u64(2718);
    let eps = 0.3;
    let lb = CliqueOfCliques::build(CliqueOfCliquesParams::new(800, eps), &mut rng)
        .expect("construction succeeds");
    let s = lb.clique_size();

    println!("— Figures 1 & 2: the construction —");
    println!(
        "n = {}, cliques N = {}, clique size s = {}, inter-clique edges = {}",
        lb.graph().n(),
        lb.num_cliques(),
        s,
        lb.inter_edge_count()
    );
    println!(
        "degrees uniform at s-1 = {}: {}",
        s - 1,
        lb.graph().is_regular(s - 1)
    );

    println!("\n— Lemma 16: conductance = Θ(α) —");
    let alpha = lb.alpha();
    let phi = analysis::conductance_sweep(lb.graph(), 3000);
    println!("α = n^(-2ε) = {alpha:.3e}, spectral-sweep φ = {phi:.3e} (ratio {:.2})", phi / alpha);

    println!("\n— Lemma 18: the price of leaving a clique —");
    println!(
        "each clique: ~{} ports, 4 external ⇒ E[messages before first contact] = {:.0}",
        s * s,
        expected_first_contact((s * s) as u64, 4)
    );

    println!("\n— The election, observed through the CG lens —");
    let mut cfg = ElectionConfig::tuned_for_simulation(lb.graph().n());
    cfg.max_walk_len = Some(4096);
    let run = run_election_on_lower_bound(&lb, &cfg, 7);
    println!(
        "success = {}, messages = {}, CG edges = {} (of {} inter-clique edges), \
         cliques touched = {}/{}",
        run.report.is_success(),
        run.report.messages,
        run.cg_edges,
        lb.inter_edge_count(),
        run.touched_cliques,
        run.num_cliques
    );
    let costs = &run.first_contact_costs;
    if !costs.is_empty() {
        let mean = costs.iter().sum::<u64>() as f64 / costs.len() as f64;
        println!(
            "measured mean first-contact cut-off = {mean:.0} messages (sequential-probing \
             expectation ≈ {:.0}): lower, because contenders burst walks across all ports \
             at once — Lemma 18 constrains *small-budget* algorithms, which this is not",
            expected_first_contact((s * s) as u64, 4)
        );
    }
}
