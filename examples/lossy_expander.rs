//! Leader election on a lossy network: one [`Campaign`] sweeps i.i.d.
//! message-drop rates on a fixed expander, charting how the w.h.p.
//! guarantee degrades when the CONGEST model stops being reliable.
//!
//! The algorithm has no retransmission, but the guess-and-double search
//! retries whole epochs: light loss costs extra epochs (visible as
//! message/round inflation), heavy loss starves the certificates and
//! the contenders *give up* — failure stays visible, never a silently
//! wrong answer.
//!
//! ```sh
//! cargo run --release --example lossy_expander
//! ```

use std::sync::Arc;

use rand::{rngs::StdRng, SeedableRng};
use welle::core::{Campaign, Election, ElectionConfig, FaultPlan};
use welle::graph::gen;

fn main() {
    let n = 128usize;
    let mut rng = StdRng::seed_from_u64(42);
    let graph = Arc::new(gen::random_regular(n, 4, &mut rng).expect("generation succeeds"));
    let cfg = ElectionConfig {
        // Cap the walk-length search so hopeless runs give up cheaply
        // instead of doubling forever.
        max_walk_len: Some(512),
        ..ElectionConfig::tuned_for_simulation(n)
    };

    // One campaign: the clean network plus one scenario per drop rate
    // (same graph, same seeds — only the fault plan differs).
    let rates = [0.0, 0.001, 0.005, 0.01, 0.05];
    let mut campaign = Campaign::new(Election::on(&graph).config(cfg)).label("p=0");
    for &p in &rates[1..] {
        campaign = campaign
            .scenario(format!("p={p}"), &graph, cfg)
            .faults(FaultPlan::new(7).drop_rate(p));
    }
    let outcome = campaign.seeds(1..7).run().expect("configs are valid");

    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>9} {:>8}",
        "drop", "success", "msgs(med)", "rounds(med)", "gave_up", "dropped"
    );
    let baseline = &outcome.summaries[0];
    for (summary, &p) in outcome.summaries.iter().zip(&rates) {
        let dropped: u64 = outcome
            .trials_of(&summary.scenario)
            .map(|t| t.report.dropped_messages)
            .sum();
        println!(
            "{:>8} {:>7.0}% {:>10} {:>10} {:>9} {:>8}",
            p,
            100.0 * summary.success_rate(),
            summary.messages.median,
            summary.rounds.median,
            summary.gave_up,
            dropped,
        );
        if p == 0.0 {
            assert_eq!(
                summary.successes, summary.trials,
                "the fault-free control must elect every time: {summary}"
            );
        }
    }
    let light = &outcome.summaries[1];
    println!(
        "\nLight loss is absorbed by extra guess-and-double epochs \
         (rounds median {} vs {} clean); heavy loss fails *visibly* — \
         contenders give up, nobody silently wins.",
        light.rounds.median, baseline.rounds.median
    );
}
