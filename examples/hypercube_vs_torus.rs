//! Connectivity drives the cost: the same algorithm on a hypercube
//! (t_mix = O(log n log log n)) versus a torus (t_mix = Θ(n)) of the same
//! size. The guess-and-double search transparently finds the right walk
//! length in both cases — but pays for the torus's poor conductance.
//!
//! ```sh
//! cargo run --release --example hypercube_vs_torus
//! ```

use std::sync::Arc;

use welle::core::{Election, ElectionConfig};
use welle::graph::{analysis, gen};
use welle::walks::{mixing_time, MixingOptions, StartPolicy};

fn main() {
    let hypercube = Arc::new(gen::hypercube(8).expect("Q8")); // 256 nodes
    let torus = Arc::new(gen::torus2d(16, 16).expect("16x16 torus")); // 256 nodes

    println!(
        "{:>10} {:>6} {:>7} {:>7} {:>9} {:>12} {:>10}",
        "family", "n", "phi~", "t_mix", "walk len", "messages", "success"
    );
    for (name, graph) in [("hypercube", &hypercube), ("torus", &torus)] {
        let n = graph.n();
        let phi = analysis::conductance_sweep(graph, 2000);
        let tmix = mixing_time(
            graph,
            MixingOptions {
                horizon: 100_000,
                starts: StartPolicy::Sample(8),
            },
        )
        .expect("mixes");
        let mut cfg = ElectionConfig::tuned_for_simulation(n);
        // The torus needs longer guesses than the expander-tuned cap.
        cfg.max_walk_len = Some(4 * tmix.max(64));
        let report = Election::on(graph)
            .config(cfg)
            .seed(11)
            .run()
            .expect("config is valid");
        println!(
            "{:>10} {:>6} {:>7.4} {:>7} {:>9} {:>12} {:>10}",
            name,
            n,
            phi,
            tmix,
            report.final_walk_len,
            report.messages,
            report.is_success()
        );
    }
    println!(
        "\nThe torus pays ~t_mix/t_mix' times more messages than the
hypercube at equal n — exactly the O(√n·polylog·t_mix) dependence of
Theorem 13."
    );
}
