//! Quickstart: elect a leader on a random-regular expander.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use rand::{rngs::StdRng, SeedableRng};
use welle::core::{Election, ElectionConfig, Exec};
use welle::graph::gen;
use welle::walks::{mixing_time, MixingOptions, StartPolicy};

fn main() {
    // 1. Build a well-connected network: a random 4-regular graph on 512
    //    nodes (an expander w.h.p., mixing in O(log n) steps).
    let mut rng = StdRng::seed_from_u64(2024);
    let graph = Arc::new(gen::random_regular(512, 4, &mut rng).expect("generation succeeds"));

    // 2. Run the PODC 2018 election. Nodes know only n and their ports.
    //    `Exec::Auto` picks the serial or sharded executor from n,
    //    density, and the host's cores; results are identical either way.
    let report = Election::on(&graph)
        .config(ElectionConfig::tuned_for_simulation(graph.n()))
        .seed(7)
        .executor(Exec::Auto)
        .run()
        .expect("config is valid");

    // 3. Inspect the outcome.
    println!("network        : n = {}, m = {}", report.n, report.m);
    println!("contenders     : {}", report.contenders);
    println!("leaders        : {:?}", report.leaders);
    println!("leader id      : {:?}", report.leader_id);
    println!("messages       : {}", report.messages);
    println!("bits           : {}", report.bits);
    println!("final walk len : {}", report.final_walk_len);
    println!("epochs         : {}", report.epochs_used);

    // 4. Compare the final guess-and-double walk length with the actual
    //    mixing time (Lemma 3: the algorithm stops by O(t_mix)).
    let tmix = mixing_time(
        &graph,
        MixingOptions {
            horizon: 10_000,
            starts: StartPolicy::Sample(16),
        },
    )
    .expect("connected graph mixes");
    println!("t_mix          : {tmix}");

    assert!(report.is_success(), "expected exactly one leader");
    println!("\nOK: unique leader elected.");
}
