//! The headline result in action: message complexity on expanders scales
//! like `O(√n · polylog n)` — far below the `Ω(m)` of flooding.
//!
//! One [`Campaign`] sweeps every expander size as a family scenario,
//! then the table compares the per-size medians against the flood-max
//! baseline side by side.
//!
//! ```sh
//! cargo run --release --example expander_campaign
//! ```

use std::sync::Arc;

use rand::{rngs::StdRng, SeedableRng};
use welle::core::{baselines::run_flood_max, Campaign, Election, ElectionConfig};
use welle::graph::gen;

fn main() {
    let sizes = [128usize, 256, 512, 1024];
    let scenarios: Vec<_> = sizes
        .iter()
        .map(|&n| {
            let mut rng = StdRng::seed_from_u64(n as u64);
            let graph =
                Arc::new(gen::random_regular(n, 4, &mut rng).expect("generation succeeds"));
            (
                format!("expander-{n}"),
                graph,
                ElectionConfig::tuned_for_simulation(n),
            )
        })
        .collect();

    // One campaign, one scenario per size, three seeds each.
    let outcome = Campaign::new(Election::on(&scenarios[0].1).config(scenarios[0].2))
        .label(scenarios[0].0.clone())
        .families(scenarios.iter().skip(1).cloned())
        .seeds([42, 43, 44])
        .run()
        .expect("configs are valid");

    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>10} {:>10}",
        "n", "m", "welle msgs", "flood msgs", "welle/√n", "flood/m"
    );
    for (summary, (_, graph, _)) in outcome.summaries.iter().zip(&scenarios) {
        assert_eq!(
            summary.successes, summary.trials,
            "{}: {summary}",
            summary.scenario
        );
        let flood = run_flood_max(graph, 42);
        assert!(flood.is_success());
        let n = summary.n;
        println!(
            "{:>6} {:>8} {:>12} {:>12} {:>10.1} {:>10.1}",
            n,
            summary.m,
            summary.messages.median,
            flood.messages,
            summary.messages.median as f64 / (n as f64).sqrt(),
            flood.messages as f64 / summary.m as f64,
        );
    }
    println!(
        "\nShape check: our column grows ~√n·polylog; flooding grows with m·D.\n\
         On sparse expanders m = 2n, so the win appears as n grows."
    );
}
