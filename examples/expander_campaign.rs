//! The headline result in action: message complexity on expanders scales
//! like `O(√n · polylog n)` — far below the `Ω(m)` of flooding.
//!
//! Sweeps n over expanders, printing our algorithm vs the flood-max
//! baseline side by side.
//!
//! ```sh
//! cargo run --release --example expander_campaign
//! ```

use std::sync::Arc;

use rand::{rngs::StdRng, SeedableRng};
use welle::core::{baselines::run_flood_max, run_election, ElectionConfig};
use welle::graph::gen;

fn main() {
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>10} {:>10}",
        "n", "m", "welle msgs", "flood msgs", "welle/√n", "flood/m"
    );
    for &n in &[128usize, 256, 512, 1024] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let graph = Arc::new(gen::random_regular(n, 4, &mut rng).expect("generation succeeds"));
        let cfg = ElectionConfig::tuned_for_simulation(n);

        let ours = run_election(&graph, &cfg, 42);
        let flood = run_flood_max(&graph, 42);

        assert!(ours.is_success(), "n={n}: {:?}", ours.leaders);
        assert!(flood.is_success());

        println!(
            "{:>6} {:>8} {:>12} {:>12} {:>10.1} {:>10.1}",
            n,
            graph.m(),
            ours.messages,
            flood.messages,
            ours.messages as f64 / (n as f64).sqrt(),
            flood.messages as f64 / graph.m() as f64,
        );
    }
    println!(
        "\nShape check: our column grows ~√n·polylog; flooding grows with m·D.\n\
         On sparse expanders m = 2n, so the win appears as n grows."
    );
}
