//! Theorem 28 live: without knowing `n`, the election split-brains.
//!
//! Two *clique* halves joined by two bridges, and a frugal single-phase
//! configuration (cliques mix in one step): the election's message budget
//! is `o(m)`, so with constant probability no message ever crosses a
//! bridge — each side runs a complete, self-consistent election and
//! **both** elect a leader. With a sparse base instead, the walk traffic
//! alone exceeds `m`, bridges are crossed immediately and the sides
//! merge: the theorem is precisely about the message budget versus `m`.
//!
//! ```sh
//! cargo run --release --example dumbbell_unknown_n
//! ```

use rand::{rngs::StdRng, SeedableRng};
use welle::graph::gen;
use welle::lowerbound::bridge::{frugal_clique_config, run_dumbbell_election};

fn main() {
    let k = 192;
    let mut rng = StdRng::seed_from_u64(99);
    let base = gen::clique(k).expect("clique base");
    let db = gen::dumbbell(&base, &mut rng).expect("dumbbell");
    let m = db.graph().m();

    println!("dumbbell: 2 x K_{k}, m = {m}, 2 bridges\n");
    println!(
        "{:>14} {:>6} {:>8} {:>8} {:>8} {:>12} {:>8} {:>10}",
        "believed n", "seed", "leadersL", "leadersR", "total", "messages", "msgs/m", "crossings"
    );

    let mut splits = 0;
    for seed in 0..5u64 {
        let cfg = frugal_clique_config(k);
        let report = run_dumbbell_election(&db, &cfg, k, seed);
        if report.split_brain() {
            splits += 1;
        }
        println!(
            "{:>14} {:>6} {:>8} {:>8} {:>8} {:>12} {:>8.2} {:>10}",
            "half (wrong)",
            seed,
            report.left_leaders,
            report.right_leaders,
            report.leaders(),
            report.messages,
            report.messages as f64 / m as f64,
            report.crossings,
        );
    }

    // Control: a sparse base with the regular (guess-and-double) budget —
    // the walk traffic exceeds m, bridges are crossed immediately and the
    // sides merge into one election. (A frugal single-phase run with the
    // true n would still split: length-1 walks cannot bridge cliques —
    // that failure is about t_mix, not about n.)
    let base = gen::random_regular(64, 4, &mut rng).expect("sparse base");
    let sparse = gen::dumbbell(&base, &mut rng).expect("sparse dumbbell");
    let cfg = welle::core::ElectionConfig::tuned_for_simulation(sparse.graph().n());
    let report = run_dumbbell_election(&sparse, &cfg, sparse.graph().n(), 1);
    println!(
        "{:>14} {:>6} {:>8} {:>8} {:>8} {:>12} {:>8.2} {:>10}",
        "sparse, full n",
        1,
        report.left_leaders,
        report.right_leaders,
        report.leaders(),
        report.messages,
        report.messages as f64 / sparse.graph().m() as f64,
        report.crossings,
    );
    assert_eq!(report.leaders(), 1, "full-budget control must merge");

    println!(
        "\nsplit-brain in {splits}/5 wrong-n runs: a sublinear-in-m election
cannot afford to find the two bridges, so each side is
indistinguishable from a standalone network (Theorem 28). Forcing
correctness without knowing n requires crossing a bridge — an
Ω(m)-message event (Lemma 30)."
    );
    assert!(splits >= 1, "expected at least one split-brain run");
}
